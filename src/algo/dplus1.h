// The composed non-uniform (deg+1)-coloring: Linial's log*-round shrink to
// O(Delta~^2) colors followed by the one-class-per-round reduction into each
// node's palette [1, deg(v)+1]. Gamma = Lambda = {Delta, m};
// f = O(Delta~^2) + O(log* m~), additive. Stand-in for the Table 1 row-1
// (Delta+1)-coloring algorithms (DESIGN.md substitution notes).
#pragma once

#include <memory>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

/// Runnable pipeline for explicit guesses.
std::unique_ptr<Algorithm> make_deg_plus_one_algorithm(std::int64_t delta_guess,
                                                       std::int64_t m_guess);

/// The A_Gamma wrapper.
std::unique_ptr<NonUniformAlgorithm> make_deg_plus_one_coloring();

}  // namespace unilocal
