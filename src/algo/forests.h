// Forest decomposition from an H-partition (Barenboim-Elkin / Nash-Williams):
// orient every edge toward its (layer, identity)-larger endpoint — acyclic,
// out-degree <= 3*a~ — then split the out-edges of every node by rank; the
// rank-r edges form forest r (every node has at most one rank-r parent).
//
// The orientation/split are deterministic local rules; these centralized
// helpers materialize them for tests, benches and examples (the LOCAL
// algorithms in arb_coloring.h/arb_mis.h recompute the same rules in-protocol
// from broadcast layers).
#pragma once

#include <vector>

#include "src/graph/graph.h"
#include "src/runtime/instance.h"

namespace unilocal {

/// out[v] = the out-neighbours of v under the (layer, identity) orientation,
/// sorted by (layer, identity) so ranks are deterministic.
std::vector<std::vector<NodeId>> orientation_from_layers(
    const Instance& instance, const std::vector<std::int64_t>& layers);

/// Largest out-degree of the orientation.
NodeId max_out_degree(const std::vector<std::vector<NodeId>>& out);

/// forest_edges[r] = the edges whose tail assigned them rank r (0-based).
/// Every forest_edges[r], viewed as a graph, is acyclic.
std::vector<std::vector<std::pair<NodeId, NodeId>>> forest_split(
    const std::vector<std::vector<NodeId>>& out);

/// Runs the H-partition peeling centrally (same rule as the LOCAL
/// algorithm): layers[v] in [1, phases], or 0 if never peeled.
std::vector<std::int64_t> central_hpartition(const Graph& g,
                                             std::int64_t threshold,
                                             std::int64_t phases);

}  // namespace unilocal
