#include "src/algo/greedy_mis.h"

#include "src/runtime/kernel.h"

namespace unilocal {

namespace {

constexpr std::int64_t kTagValue = 0;
constexpr std::int64_t kTagJoined = 1;

class GreedyMisProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const bool resolve_round = (ctx.round() % 2) == 1;
    if (!resolve_round) {
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        const Message* m = ctx.received(j);
        if (m != nullptr && (*m)[0] == kTagJoined) {
          ctx.finish(0);
          return;
        }
      }
      ctx.broadcast({kTagValue, ctx.id()});
      return;
    }
    bool smallest = true;
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m == nullptr || (*m)[0] != kTagValue) continue;
      if ((*m)[1] < ctx.id()) {
        smallest = false;
        break;
      }
    }
    if (smallest) {
      ctx.broadcast({kTagJoined});
      ctx.finish(1);
    }
  }
};

class GlobalMis final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "greedy-mis-as-A{n}"; }
  ParamSet gamma() const override { return {Param::kNumNodes}; }
  ParamSet lambda() const override { return {Param::kNumNodes}; }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t>) const override {
    // The code happens to be uniform; the *bound* is what depends on n.
    return std::make_unique<GreedyMis>();
  }

 private:
  AdditiveBound bound_{{BoundComponent{
      "2n+4", [](std::int64_t n) { return 2.0 * static_cast<double>(n) + 4.0; }}}};
};

// --- flat-kernel lowering (mirrors GreedyMisProcess::step bit-for-bit) ------

void greedy_mis_kernel_propose(KernelCtx& ctx) {
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (present && m[0] == kTagJoined) {
      ctx.finish(0);
      return;
    }
  }
  ctx.broadcast({kTagValue, ctx.identity});
}

void greedy_mis_kernel_resolve(KernelCtx& ctx) {
  bool smallest = true;
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (!present || m[0] != kTagValue) continue;
    if (m[1] < ctx.identity) {
      smallest = false;
      break;
    }
  }
  if (smallest) {
    ctx.broadcast({kTagJoined});
    ctx.finish(1);
  }
}

// --- batched stepping (phase-grouped buckets; see KernelBatchCtx) -----------
//
// Same bodies as the scalar phases, run inline over the bucket; the resolve
// identity-compare scan accumulates beat flags in fixed-width lanes instead
// of early-exiting, which reads and sends the same words either way.

constexpr NodeId kScanLanes = 4;

inline std::int64_t greedy_port_beats(KernelCtx& ctx, NodeId j) {
  bool present = false;
  const auto m = ctx.recv(j, &present);
  if (!present || m[0] != kTagValue) return 0;
  return m[1] < ctx.identity ? 1 : 0;
}

void greedy_mis_batch_propose(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    greedy_mis_kernel_propose(ctx);
    b.latch(i, ctx);
  }
}

void greedy_mis_batch_resolve(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    std::int64_t beat[kScanLanes] = {};
    NodeId j = 0;
    for (; j + kScanLanes <= ctx.degree; j += kScanLanes)
      for (NodeId l = 0; l < kScanLanes; ++l)
        beat[l] |= greedy_port_beats(ctx, j + l);
    std::int64_t any = 0;
    for (NodeId l = 0; l < kScanLanes; ++l) any |= beat[l];
    for (; j < ctx.degree; ++j) any |= greedy_port_beats(ctx, j);
    if (any == 0) {
      ctx.broadcast({kTagJoined});
      ctx.finish(1);
    }
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_greedy_mis_kernel() {
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "greedy-mis";
  kernel->phases = {
      {"propose", greedy_mis_kernel_propose, greedy_mis_batch_propose},
      {"resolve", greedy_mis_kernel_resolve, greedy_mis_batch_resolve}};
  return kernel;
}

}  // namespace

std::unique_ptr<Process> GreedyMis::spawn(const NodeInit&) const {
  return std::make_unique<GreedyMisProcess>();
}

std::shared_ptr<const StepKernel> GreedyMis::kernel() const {
  static const std::shared_ptr<const StepKernel> kernel =
      make_greedy_mis_kernel();
  return kernel;
}

std::unique_ptr<NonUniformAlgorithm> make_global_mis() {
  return std::make_unique<GlobalMis>();
}

}  // namespace unilocal
