#include "src/algo/greedy_mis.h"

namespace unilocal {

namespace {

constexpr std::int64_t kTagValue = 0;
constexpr std::int64_t kTagJoined = 1;

class GreedyMisProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const bool resolve_round = (ctx.round() % 2) == 1;
    if (!resolve_round) {
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        const Message* m = ctx.received(j);
        if (m != nullptr && (*m)[0] == kTagJoined) {
          ctx.finish(0);
          return;
        }
      }
      ctx.broadcast({kTagValue, ctx.id()});
      return;
    }
    bool smallest = true;
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m == nullptr || (*m)[0] != kTagValue) continue;
      if ((*m)[1] < ctx.id()) {
        smallest = false;
        break;
      }
    }
    if (smallest) {
      ctx.broadcast({kTagJoined});
      ctx.finish(1);
    }
  }
};

class GlobalMis final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "greedy-mis-as-A{n}"; }
  ParamSet gamma() const override { return {Param::kNumNodes}; }
  ParamSet lambda() const override { return {Param::kNumNodes}; }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t>) const override {
    // The code happens to be uniform; the *bound* is what depends on n.
    return std::make_unique<GreedyMis>();
  }

 private:
  AdditiveBound bound_{{BoundComponent{
      "2n+4", [](std::int64_t n) { return 2.0 * static_cast<double>(n) + 4.0; }}}};
};

}  // namespace

std::unique_ptr<Process> GreedyMis::spawn(const NodeInit&) const {
  return std::make_unique<GreedyMisProcess>();
}

std::unique_ptr<NonUniformAlgorithm> make_global_mis() {
  return std::make_unique<GlobalMis>();
}

}  // namespace unilocal
