// MIS for bounded-arboricity graphs: the O(a~^2)-coloring pipeline of
// arb_coloring.h followed by the color-class sweep. Substitute for the
// Barenboim-Elkin'10 sublogarithmic MIS (Table 1 rows 3-4; DESIGN.md):
// f = O(a~^2) + O(log n~) + O(log* m~) — on bounded-arboricity families the
// measured rounds are dominated by the O(log n) peeling, reproducing the
// "o(log n) / O(log n / log log n)" shape of the paper's rows.
//
// Gamma = Lambda = {a, n, m}. Feeding this through the Theorem 3 wrapper
// with the domination a <= n exercises exactly the situation the paper
// highlights for [6]: correctness needs a, but the time bound is stated
// in n.
#pragma once

#include <memory>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

std::unique_ptr<Algorithm> make_arb_mis_algorithm(std::int64_t arboricity_guess,
                                                  std::int64_t n_guess,
                                                  std::int64_t m_guess);

std::unique_ptr<NonUniformAlgorithm> make_arb_mis();

}  // namespace unilocal
