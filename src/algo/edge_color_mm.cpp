#include "src/algo/edge_color_mm.h"

#include <algorithm>

#include "src/algo/color_reduce.h"
#include "src/algo/linial.h"
#include "src/problems/matching.h"
#include "src/runtime/chain.h"
#include "src/runtime/kernel.h"
#include "src/util/math.h"

namespace unilocal {

namespace {

// Message layout: [matched_bit, kind, payload...].
constexpr std::int64_t kKindNone = 0;
constexpr std::int64_t kKindPropose = 1;  // payload: proposer identity
constexpr std::int64_t kKindAccept = 2;   // payload: target identity
constexpr std::int64_t kKindReject = 3;

class ProposalMatchingProcess final : public Process {
 public:
  explicit ProposalMatchingProcess(std::int64_t delta_guess,
                                   std::int64_t rounds)
      : delta_guess_(delta_guess), rounds_(rounds) {}

  void step(Context& ctx) override {
    if (ctx.round() == 0) {
      color_ = ctx.input().empty() ? 1 : ctx.input()[0];
      believed_matched_.assign(static_cast<std::size_t>(ctx.degree()), 0);
      proposed_.assign(static_cast<std::size_t>(ctx.degree()), 0);
      ctx.broadcast({0, kKindNone});
      return;
    }
    // --- Ingest: status updates, proposals, replies. ---
    std::int64_t best_proposer_port = -1;
    std::int64_t best_proposer_id = 0;
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m == nullptr) continue;
      believed_matched_[static_cast<std::size_t>(j)] =
          static_cast<char>((*m)[0]);
      const std::int64_t kind = (*m)[1];
      if (kind == kKindPropose && !matched_) {
        const std::int64_t proposer = (*m)[2];
        if (best_proposer_port < 0 || proposer < best_proposer_id) {
          best_proposer_port = j;
          best_proposer_id = proposer;
        }
      } else if (kind == kKindAccept && awaiting_port_ == j && !matched_) {
        matched_ = true;
        match_value_ = match_value(ctx.id(), (*m)[2]);
        awaiting_port_ = -1;
      } else if (kind == kKindReject && awaiting_port_ == j) {
        awaiting_port_ = -1;
      } else if (kind == kKindPropose && matched_) {
        pending_rejects_.push_back(j);
      }
    }
    // Accept the best proposal (if still unmatched).
    std::vector<std::pair<NodeId, Message>> directed;
    if (best_proposer_port >= 0) {
      matched_ = true;
      match_value_ = match_value(ctx.id(), best_proposer_id);
      awaiting_port_ = -1;  // any outstanding proposal of ours is moot
      directed.emplace_back(
          static_cast<NodeId>(best_proposer_port),
          Message{1, kKindAccept, ctx.id()});
      // Reject the other proposers of this round.
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        const Message* m = ctx.received(j);
        if (m != nullptr && (*m)[1] == kKindPropose &&
            j != best_proposer_port) {
          directed.emplace_back(j, Message{1, kKindReject});
        }
      }
    }
    for (NodeId j : pending_rejects_) {
      directed.emplace_back(j, Message{matched_ ? 1 : 0, kKindReject});
    }
    pending_rejects_.clear();

    // --- Propose during our own phase. ---
    const std::int64_t phase_len = 2 * (delta_guess_ + 1);
    const std::int64_t phase = (ctx.round() - 1) / phase_len + 1;
    const bool propose_round = ((ctx.round() - 1) % 2) == 0;
    if (!matched_ && phase == color_ && propose_round &&
        awaiting_port_ < 0) {
      NodeId target = -1;
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        if (!believed_matched_[static_cast<std::size_t>(j)] &&
            !proposed_[static_cast<std::size_t>(j)]) {
          target = j;
          break;
        }
      }
      if (target >= 0) {
        proposed_[static_cast<std::size_t>(target)] = 1;
        awaiting_port_ = target;
        directed.emplace_back(target, Message{0, kKindPropose, ctx.id()});
      } else {
        // Every neighbour is matched (believed state is conservative:
        // matched is permanent) — the maximality certificate.
        exhausted_ = true;
      }
    }
    // --- Emit: directed messages win; everyone else hears our status. ---
    std::vector<char> has_directed(static_cast<std::size_t>(ctx.degree()), 0);
    for (auto& [port, msg] : directed) {
      has_directed[static_cast<std::size_t>(port)] = 1;
      ctx.send(port, std::move(msg));
    }
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      if (!has_directed[static_cast<std::size_t>(j)])
        ctx.send(j, {matched_ ? 1 : 0, kKindNone});
    }
    if (ctx.round() + 1 >= rounds_) {
      ctx.finish(matched_ ? match_value_ : unmatched_value(ctx.id()));
    }
  }

 private:
  std::int64_t delta_guess_;
  std::int64_t rounds_;
  std::int64_t color_ = 1;
  bool matched_ = false;
  bool exhausted_ = false;
  std::int64_t match_value_ = 0;
  std::int64_t awaiting_port_ = -1;
  std::vector<char> believed_matched_;
  std::vector<char> proposed_;
  std::vector<NodeId> pending_rejects_;
};

// --- flat-kernel lowering (mirrors ProposalMatchingProcess bit-for-bit) -----
//
// The per-port believed-matched/proposed caches pack into one per-port word
// (bit 0 / bit 1). The ingest pass is the delicate part: the vtable process
// re-reads received(j) while emitting rejects, but kernel recv spans may be
// invalidated by the first send (synchronizer-mode history growth), so the
// single ingest pass records per-port propose-seen flags and the
// pending-reject ports into the per-thread scratch (flags in [0, degree),
// pending ports appended after). Emission then replays the process's exact
// send order — accept, same-round rejects, pending rejects, own proposal,
// then status words to every port without a directed message.

constexpr std::int64_t kPortBelieved = 1;  // bit 0 of the per-port word
constexpr std::int64_t kPortProposed = 2;  // bit 1 of the per-port word
constexpr std::int64_t kSeenPropose = 1;   // scratch flag bits
constexpr std::int64_t kHasDirected = 2;

struct ProposalMatchingKernelConfig {
  std::int64_t delta_guess;
  std::int64_t rounds;
};

struct ProposalMatchingKernelState {
  std::int64_t color;
  std::int64_t matched;
  std::int64_t match_value;
  std::int64_t awaiting_port;
};

void proposal_matching_kernel_round0(KernelCtx& ctx) {
  auto& st = ctx.state_as<ProposalMatchingKernelState>();
  st.color = ctx.input.empty() ? 1 : ctx.input[0];
  st.awaiting_port = -1;
  ctx.broadcast({0, kKindNone});
}

void proposal_matching_kernel_phase(KernelCtx& ctx) {
  const auto* cfg =
      static_cast<const ProposalMatchingKernelConfig*>(ctx.config);
  auto& st = ctx.state_as<ProposalMatchingKernelState>();
  auto& sc = *ctx.scratch;
  const std::size_t deg = static_cast<std::size_t>(ctx.degree);
  sc.assign(deg, 0);
  // --- Ingest: status updates, proposals, replies (one pass; see above). ---
  std::int64_t best_proposer_port = -1;
  std::int64_t best_proposer_id = 0;
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (!present) continue;
    ctx.port_state[j] = (ctx.port_state[j] & ~kPortBelieved) |
                        (m[0] != 0 ? kPortBelieved : 0);
    const std::int64_t kind = m[1];
    if (kind == kKindPropose) {
      sc[static_cast<std::size_t>(j)] |= kSeenPropose;
      if (st.matched == 0) {
        const std::int64_t proposer = m[2];
        if (best_proposer_port < 0 || proposer < best_proposer_id) {
          best_proposer_port = j;
          best_proposer_id = proposer;
        }
      } else {
        sc.push_back(j);  // pending reject
      }
    } else if (kind == kKindAccept && st.awaiting_port == j &&
               st.matched == 0) {
      st.matched = 1;
      st.match_value = match_value(ctx.identity, m[2]);
      st.awaiting_port = -1;
    } else if (kind == kKindReject && st.awaiting_port == j) {
      st.awaiting_port = -1;
    }
  }
  const std::size_t pending_end = sc.size();
  // --- Accept the best proposal (if still unmatched). ---
  if (best_proposer_port >= 0) {
    st.matched = 1;
    st.match_value = match_value(ctx.identity, best_proposer_id);
    st.awaiting_port = -1;  // any outstanding proposal of ours is moot
    const NodeId best = static_cast<NodeId>(best_proposer_port);
    sc[static_cast<std::size_t>(best)] |= kHasDirected;
    ctx.send(best, {1, kKindAccept, ctx.identity});
    // Reject the other proposers of this round.
    for (NodeId j = 0; j < ctx.degree; ++j) {
      if ((sc[static_cast<std::size_t>(j)] & kSeenPropose) != 0 && j != best) {
        sc[static_cast<std::size_t>(j)] |= kHasDirected;
        ctx.send(j, {1, kKindReject});
      }
    }
  }
  for (std::size_t idx = deg; idx < pending_end; ++idx) {
    const NodeId j = static_cast<NodeId>(sc[idx]);
    sc[static_cast<std::size_t>(j)] |= kHasDirected;
    ctx.send(j, {st.matched != 0 ? 1 : 0, kKindReject});
  }
  // --- Propose during our own phase. ---
  const std::int64_t phase_len = 2 * (cfg->delta_guess + 1);
  const std::int64_t phase = (ctx.round - 1) / phase_len + 1;
  const bool propose_round = ((ctx.round - 1) % 2) == 0;
  if (st.matched == 0 && phase == st.color && propose_round &&
      st.awaiting_port < 0) {
    NodeId target = -1;
    for (NodeId j = 0; j < ctx.degree; ++j) {
      if ((ctx.port_state[j] & (kPortBelieved | kPortProposed)) == 0) {
        target = j;
        break;
      }
    }
    if (target >= 0) {
      ctx.port_state[target] |= kPortProposed;
      st.awaiting_port = target;
      sc[static_cast<std::size_t>(target)] |= kHasDirected;
      ctx.send(target, {0, kKindPropose, ctx.identity});
    }
  }
  // --- Emit: directed messages already sent; everyone else hears status. ---
  for (NodeId j = 0; j < ctx.degree; ++j) {
    if ((sc[static_cast<std::size_t>(j)] & kHasDirected) == 0)
      ctx.send(j, {st.matched != 0 ? 1 : 0, kKindNone});
  }
  if (ctx.round + 1 >= cfg->rounds) {
    ctx.finish(st.matched != 0 ? st.match_value
                               : unmatched_value(ctx.identity));
  }
}

void proposal_matching_batch_round0(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    proposal_matching_kernel_round0(ctx);
    b.latch(i, ctx);
  }
}

void proposal_matching_batch_phase(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    proposal_matching_kernel_phase(ctx);
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_proposal_matching_kernel(
    std::int64_t delta_guess, std::int64_t rounds) {
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "proposal-matching";
  kernel->state_size = sizeof(ProposalMatchingKernelState);
  kernel->state_align = alignof(ProposalMatchingKernelState);
  kernel->port_state_words = 1;
  kernel->phases = {{"round0", proposal_matching_kernel_round0,
                     proposal_matching_batch_round0},
                    {"phase", proposal_matching_kernel_phase,
                     proposal_matching_batch_phase}};
  kernel->select_fn = [](std::int64_t round, const std::byte*,
                         const void*) -> std::uint16_t {
    return round == 0 ? 0 : 1;
  };
  kernel->config = std::shared_ptr<const void>(
      std::make_shared<ProposalMatchingKernelConfig>(
          ProposalMatchingKernelConfig{delta_guess, rounds}));
  return kernel;
}

}  // namespace

ProposalMatching::ProposalMatching(std::int64_t delta_guess)
    : delta_guess_(std::max<std::int64_t>(delta_guess, 0)) {
  const std::int64_t phases = delta_guess_ + 1;  // one per color class
  rounds_ = 1 + phases * 2 * (delta_guess_ + 1) + 2;
  kernel_ = make_proposal_matching_kernel(delta_guess_, rounds_);
}

std::unique_ptr<Process> ProposalMatching::spawn(const NodeInit&) const {
  return std::make_unique<ProposalMatchingProcess>(delta_guess_, rounds_);
}

std::shared_ptr<const StepKernel> ProposalMatching::kernel() const {
  return kernel_;
}

std::string ProposalMatching::name() const {
  return "proposal-matching(D=" + std::to_string(delta_guess_) + ")";
}

std::unique_ptr<Algorithm> make_matching_algorithm(std::int64_t delta_guess,
                                                   std::int64_t m_guess) {
  auto linial = std::make_shared<LinialColoring>(
      delta_guess, std::max<std::int64_t>(m_guess, 1));
  const std::int64_t k_final = linial->schedule().final_space;
  auto reduce = std::make_shared<ColorReduce>(k_final, /*target=*/0);
  auto propose = std::make_shared<ProposalMatching>(delta_guess);
  std::vector<ChainStage> stages;
  stages.push_back({linial, static_cast<std::int64_t>(
                                linial->schedule().length()) +
                                1});
  stages.push_back({reduce, reduce->schedule_rounds()});
  stages.push_back({propose, propose->schedule_rounds()});
  return std::make_unique<ChainAlgorithm>(
      "matching(D=" + std::to_string(delta_guess) + ")", std::move(stages));
}

namespace {

class ColoredMatching final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "colored-proposal-matching"; }
  ParamSet gamma() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  ParamSet lambda() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return make_matching_algorithm(guesses[0], guesses[1]);
  }

 private:
  AdditiveBound bound_{
      {BoundComponent{"O(D^2)",
                      [](std::int64_t d) {
                        const std::int64_t dd = std::max<std::int64_t>(d, 0);
                        return static_cast<double>(
                            linial_final_space_bound(dd) +
                            (dd + 1) * 2 * (dd + 1) + 12);
                      }},
       BoundComponent{"log*(m)+43", [](std::int64_t m) {
                        return static_cast<double>(
                            log_star(static_cast<std::uint64_t>(
                                std::max<std::int64_t>(m, 2))) +
                            43);
                      }}}};
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_colored_matching() {
  return std::make_unique<ColoredMatching>();
}

}  // namespace unilocal
