// Luby-style randomized MIS (Luby'86 / Alon-Babai-Itai'86): the uniform
// randomized O(log n)-expected-round baseline of the paper's Table 1
// (last row), and — truncated to a guess-dependent budget — the weak
// Monte-Carlo non-uniform algorithm fed to Theorem 2.
//
// Protocol (2 rounds per phase): undecided nodes draw a random 64-bit rank;
// a node joins when its (rank, identity) is lexicographically smallest in
// its undecided closed neighbourhood; neighbours of joiners retire.
#pragma once

#include <memory>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

class LubyMis final : public Algorithm {
 public:
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::string name() const override { return "luby-mis"; }
  /// Flat-kernel lowering ("luby" in the kernel registry).
  std::shared_ptr<const StepKernel> kernel() const override;
};

/// Wraps any algorithm so every node force-finishes (with `fallback`) once
/// `budget` local rounds elapse — the paper's "A restricted to i rounds".
class TruncatedAlgorithm final : public Algorithm {
 public:
  TruncatedAlgorithm(std::shared_ptr<const Algorithm> inner,
                     std::int64_t budget, std::int64_t fallback = 0);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::string name() const override;
  /// Lowered whenever the inner algorithm is: wraps the inner kernel in a
  /// budget check, so transformer pipelines keep the kernel path for their
  /// truncated stages.
  std::shared_ptr<const StepKernel> kernel() const override;

 private:
  std::shared_ptr<const Algorithm> inner_;
  std::int64_t budget_;
  std::int64_t fallback_;
  std::shared_ptr<const StepKernel> kernel_;
};

/// The non-uniform weak Monte-Carlo MIS: Luby truncated to
/// budget(n~) = 2 * (6*ceil(log2 n~) + 8) rounds, which empirically succeeds
/// with probability well above the 1/2 guarantee Theorem 2 assumes.
/// Gamma = Lambda = {n}; f(n~) = budget(n~) (additive, s_f = 1).
std::unique_ptr<NonUniformAlgorithm> make_truncated_luby_mis();

/// Budget used by make_truncated_luby_mis.
std::int64_t luby_budget(std::int64_t n_guess);

}  // namespace unilocal
