#include "src/algo/arb_mis.h"

#include <algorithm>

#include "src/algo/arb_coloring.h"
#include "src/algo/hpartition.h"
#include "src/algo/linial.h"
#include "src/algo/mis_from_coloring.h"
#include "src/runtime/chain.h"
#include "src/util/math.h"

namespace unilocal {

std::unique_ptr<Algorithm> make_arb_mis_algorithm(std::int64_t arboricity_guess,
                                                  std::int64_t n_guess,
                                                  std::int64_t m_guess) {
  auto peel = std::make_shared<HPartition>(arboricity_guess, n_guess);
  auto color = std::make_shared<OutLinialColoring>(peel->threshold(), m_guess);
  auto sweep = std::make_shared<MisColorSweep>(color->final_space());
  std::vector<ChainStage> stages;
  stages.push_back({peel, peel->schedule_rounds()});
  stages.push_back({color, color->schedule_rounds()});
  stages.push_back({sweep, sweep->schedule_rounds()});
  return std::make_unique<ChainAlgorithm>(
      "arb-mis(a=" + std::to_string(arboricity_guess) + ")",
      std::move(stages));
}

namespace {

class ArbMis final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "arb-mis"; }
  ParamSet gamma() const override {
    return {Param::kArboricity, Param::kNumNodes, Param::kMaxIdentity};
  }
  ParamSet lambda() const override { return gamma(); }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return make_arb_mis_algorithm(guesses[0], guesses[1], guesses[2]);
  }

 private:
  // Sweep length is the out-Linial fixed point for out-degree 3a:
  // linial_final_space_bound(3a) colors.
  AdditiveBound bound_{
      {BoundComponent{"O(a^2)",
                      [](std::int64_t a) {
                        return static_cast<double>(
                            linial_final_space_bound(
                                3 * std::max<std::int64_t>(a, 1)) +
                            8);
                      }},
       BoundComponent{"log1.5(n)+5",
                      [](std::int64_t n) {
                        return static_cast<double>(HPartition::phases_for(n) +
                                                   5);
                      }},
       BoundComponent{"log*(m)+44", [](std::int64_t m) {
                        return static_cast<double>(
                            log_star(static_cast<std::uint64_t>(
                                std::max<std::int64_t>(m, 2))) +
                            44);
                      }}}};
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_arb_mis() {
  return std::make_unique<ArbMis>();
}

}  // namespace unilocal
