#include "src/algo/lambda_coloring.h"

#include <algorithm>

#include "src/algo/color_reduce.h"
#include "src/algo/linial.h"
#include "src/runtime/chain.h"
#include "src/util/math.h"

namespace unilocal {

std::unique_ptr<Algorithm> make_lambda_coloring_algorithm(
    std::int64_t lambda, std::int64_t delta_guess, std::int64_t m_guess) {
  auto linial = std::make_shared<LinialColoring>(
      delta_guess, std::max<std::int64_t>(m_guess, 1));
  const std::int64_t k_final = linial->schedule().final_space;
  const std::int64_t target =
      std::max<std::int64_t>(lambda * (delta_guess + 1), 1);
  auto reduce = std::make_shared<ColorReduce>(k_final, target);
  std::vector<ChainStage> stages;
  stages.push_back({linial, static_cast<std::int64_t>(
                                linial->schedule().length()) +
                                1});
  stages.push_back({reduce, reduce->schedule_rounds()});
  return std::make_unique<ChainAlgorithm>(
      "lambda(D+1)-coloring(l=" + std::to_string(lambda) +
          ",D=" + std::to_string(delta_guess) + ")",
      std::move(stages));
}

namespace {

class LambdaColoring final : public NonUniformAlgorithm {
 public:
  explicit LambdaColoring(std::int64_t lambda)
      : lambda_(lambda),
        // The reduction runs for at most final_space rounds; keeping the full
        // quadratic term (instead of final_space - lambda(D+1)) keeps the
        // component provably non-decreasing across prime jumps.
        bound_({BoundComponent{"O(D^2)",
                               [](std::int64_t d) {
                                 return static_cast<double>(
                                     linial_final_space_bound(d) + 6);
                               }},
                BoundComponent{"log*(m)+43", [](std::int64_t m) {
                                 return static_cast<double>(
                                     log_star(static_cast<std::uint64_t>(
                                         std::max<std::int64_t>(m, 2))) +
                                     43);
                               }}}) {}

  std::string name() const override {
    return "lambda(D+1)-coloring(l=" + std::to_string(lambda_) + ")";
  }
  ParamSet gamma() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  ParamSet lambda() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return make_lambda_coloring_algorithm(lambda_, guesses[0], guesses[1]);
  }

 private:
  std::int64_t lambda_;
  AdditiveBound bound_;
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_lambda_coloring(std::int64_t lambda) {
  return std::make_unique<LambdaColoring>(std::max<std::int64_t>(lambda, 1));
}

}  // namespace unilocal
