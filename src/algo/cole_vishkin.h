// Cole-Vishkin deterministic 3-coloring of rooted forests: the classical
// O(log* n) symmetry-breaking primitive behind the paper's Table 1
// machinery. Each step rewrites a color as (index of the lowest bit
// differing from the parent, that bit), collapsing a K-color space to
// 2*ceil(log2 K) colors; once at 6 colors, three shift-down + recolor pairs
// reach 3.
//
// Input convention: input[0] = the port of the node's parent, or -1 for a
// root (see make_rooted_forest_instance).
#pragma once

#include <memory>

#include "src/runtime/instance.h"
#include "src/runtime/local.h"

namespace unilocal {

class ColeVishkin final : public Algorithm {
 public:
  explicit ColeVishkin(std::int64_t m_guess);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::string name() const override;
  std::int64_t schedule_rounds() const noexcept;
  /// Flat-kernel lowering ("cole-vishkin" in the kernel registry).
  std::shared_ptr<const StepKernel> kernel() const override;

 private:
  std::vector<std::int64_t> spaces_;  // color-space sizes per step
  std::shared_ptr<const StepKernel> kernel_;
};

/// Builds the rooted-forest instance for a forest graph: parent ports from a
/// BFS rooted at each component's minimum-identity node.
Instance make_rooted_forest_instance(Graph forest, std::uint64_t seed);

}  // namespace unilocal
