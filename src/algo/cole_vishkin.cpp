#include "src/algo/cole_vishkin.h"

#include <algorithm>
#include <queue>

#include "src/runtime/kernel.h"
#include "src/util/math.h"

namespace unilocal {

namespace {

std::vector<std::int64_t> cv_spaces(std::int64_t m_guess) {
  std::vector<std::int64_t> spaces;
  std::int64_t space = std::max<std::int64_t>(m_guess + 1, 8);
  spaces.push_back(space);
  while (space > 6) {
    space = 2 * clog2(static_cast<std::uint64_t>(space));
    space = std::max<std::int64_t>(space, 6);
    spaces.push_back(space);
  }
  return spaces;
}

class ColeVishkinProcess final : public Process {
 public:
  explicit ColeVishkinProcess(const std::vector<std::int64_t>* spaces)
      : spaces_(spaces) {}

  void step(Context& ctx) override {
    const std::int64_t parent_port =
        ctx.input().empty() ? -1 : ctx.input()[0];
    const std::size_t steps = spaces_->size() - 1;
    if (ctx.round() == 0) {
      color_ = ctx.id() % (*spaces_)[0];
      ctx.broadcast({color_});
      return;
    }
    const std::int64_t parent_color =
        parent_port >= 0 && ctx.received(static_cast<NodeId>(parent_port))
            ? (*ctx.received(static_cast<NodeId>(parent_port)))[0]
            : parent_cache_;
    if (parent_port >= 0) parent_cache_ = parent_color;

    if (ctx.round() <= static_cast<std::int64_t>(steps)) {
      // Bit-shrink step.
      if (parent_port < 0) {
        color_ = color_ & 1;  // root rule
      } else {
        const std::int64_t diff = color_ ^ parent_color;
        const std::int64_t i = diff == 0 ? 0 : ilog2(diff & (-diff));
        color_ = 2 * i + ((color_ >> i) & 1);
      }
      ctx.broadcast({color_});
      return;
    }
    // Three (shift-down; eliminate t) pairs for t = 5, 4, 3.
    const std::int64_t phase = ctx.round() - static_cast<std::int64_t>(steps) - 1;
    const std::int64_t pair = phase / 2;  // 0,1,2
    const bool shift = (phase % 2) == 0;
    if (pair >= 3) {
      ctx.finish(color_ + 1);
      return;
    }
    if (shift) {
      previous_ = color_;
      color_ = parent_port < 0 ? (color_ + 1) % 3 : parent_color;
      ctx.broadcast({color_});
      return;
    }
    const std::int64_t t = 5 - pair;
    if (color_ == t) {
      // Conflicts: parent's current color + the single color all children
      // share (our own pre-shift color).
      for (std::int64_t c = 0; c < 3; ++c) {
        if (c != parent_color && c != previous_) {
          color_ = c;
          break;
        }
      }
    }
    ctx.broadcast({color_});
  }

 private:
  const std::vector<std::int64_t>* spaces_;
  std::int64_t color_ = 0;
  std::int64_t previous_ = 0;
  std::int64_t parent_cache_ = -1;
};

// --- flat-kernel lowering (mirrors ColeVishkinProcess::step bit-for-bit) ----

struct CvKernelConfig {
  std::vector<std::int64_t> spaces;
};

struct CvKernelState {
  std::int64_t color;
  std::int64_t previous;
  std::int64_t parent_cache;
};

void cv_kernel_init(std::byte* state, const NodeInit&, const void*) {
  auto* st = reinterpret_cast<CvKernelState*>(state);
  st->color = 0;
  st->previous = 0;
  st->parent_cache = -1;
}

/// Reads the parent's current color (falling back to the cache when no
/// message arrived this round) and refreshes the cache.
std::int64_t cv_parent_color(KernelCtx& ctx, CvKernelState& st,
                             std::int64_t parent_port) {
  std::int64_t parent_color = st.parent_cache;
  if (parent_port >= 0) {
    bool present = false;
    const auto m = ctx.recv(static_cast<NodeId>(parent_port), &present);
    if (present) parent_color = m[0];
    st.parent_cache = parent_color;
  }
  return parent_color;
}

void cv_kernel_round0(KernelCtx& ctx) {
  const auto* cfg = static_cast<const CvKernelConfig*>(ctx.config);
  auto& st = ctx.state_as<CvKernelState>();
  st.color = ctx.identity % cfg->spaces[0];
  ctx.broadcast({st.color});
}

void cv_kernel_shrink(KernelCtx& ctx) {
  auto& st = ctx.state_as<CvKernelState>();
  const std::int64_t parent_port = ctx.input.empty() ? -1 : ctx.input[0];
  const std::int64_t parent_color = cv_parent_color(ctx, st, parent_port);
  if (parent_port < 0) {
    st.color = st.color & 1;  // root rule
  } else {
    const std::int64_t diff = st.color ^ parent_color;
    const std::int64_t i = diff == 0 ? 0 : ilog2(diff & (-diff));
    st.color = 2 * i + ((st.color >> i) & 1);
  }
  ctx.broadcast({st.color});
}

void cv_kernel_tail(KernelCtx& ctx) {
  const auto* cfg = static_cast<const CvKernelConfig*>(ctx.config);
  auto& st = ctx.state_as<CvKernelState>();
  const std::int64_t parent_port = ctx.input.empty() ? -1 : ctx.input[0];
  const std::int64_t parent_color = cv_parent_color(ctx, st, parent_port);
  const std::int64_t steps =
      static_cast<std::int64_t>(cfg->spaces.size()) - 1;
  // Three (shift-down; eliminate t) pairs for t = 5, 4, 3.
  const std::int64_t phase = ctx.round - steps - 1;
  const std::int64_t pair = phase / 2;  // 0,1,2
  const bool shift = (phase % 2) == 0;
  if (pair >= 3) {
    ctx.finish(st.color + 1);
    return;
  }
  if (shift) {
    st.previous = st.color;
    st.color = parent_port < 0 ? (st.color + 1) % 3 : parent_color;
    ctx.broadcast({st.color});
    return;
  }
  const std::int64_t t = 5 - pair;
  if (st.color == t) {
    // Conflicts: parent's current color + the single color all children
    // share (our own pre-shift color).
    for (std::int64_t c = 0; c < 3; ++c) {
      if (c != parent_color && c != st.previous) {
        st.color = c;
        break;
      }
    }
  }
  ctx.broadcast({st.color});
}

void cv_batch_round0(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    cv_kernel_round0(ctx);
    b.latch(i, ctx);
  }
}

void cv_batch_shrink(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    cv_kernel_shrink(ctx);
    b.latch(i, ctx);
  }
}

void cv_batch_tail(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    cv_kernel_tail(ctx);
    b.latch(i, ctx);
  }
}

std::uint16_t cv_kernel_select(std::int64_t round, const std::byte*,
                               const void* config) {
  const auto* cfg = static_cast<const CvKernelConfig*>(config);
  const std::int64_t steps =
      static_cast<std::int64_t>(cfg->spaces.size()) - 1;
  if (round == 0) return 0;
  return round <= steps ? 1 : 2;
}

std::shared_ptr<const StepKernel> make_cv_kernel(
    const std::vector<std::int64_t>& spaces) {
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "cole-vishkin";
  kernel->state_size = sizeof(CvKernelState);
  kernel->state_align = alignof(CvKernelState);
  kernel->init_fn = cv_kernel_init;
  kernel->phases = {{"round0", cv_kernel_round0, cv_batch_round0},
                    {"shrink", cv_kernel_shrink, cv_batch_shrink},
                    {"tail", cv_kernel_tail, cv_batch_tail}};
  kernel->select_fn = cv_kernel_select;
  kernel->config = std::shared_ptr<const void>(
      std::make_shared<CvKernelConfig>(CvKernelConfig{spaces}));
  return kernel;
}

}  // namespace

ColeVishkin::ColeVishkin(std::int64_t m_guess)
    : spaces_(cv_spaces(m_guess)), kernel_(make_cv_kernel(spaces_)) {}

std::shared_ptr<const StepKernel> ColeVishkin::kernel() const {
  return kernel_;
}

std::unique_ptr<Process> ColeVishkin::spawn(const NodeInit&) const {
  return std::make_unique<ColeVishkinProcess>(&spaces_);
}

std::string ColeVishkin::name() const {
  return "cole-vishkin(steps=" + std::to_string(spaces_.size() - 1) + ")";
}

std::int64_t ColeVishkin::schedule_rounds() const noexcept {
  return static_cast<std::int64_t>(spaces_.size() - 1) + 8;
}

Instance make_rooted_forest_instance(Graph forest, std::uint64_t seed) {
  Instance instance =
      make_instance(std::move(forest), IdentityScheme::kRandomPermuted, seed);
  const Graph& g = instance.graph;
  const NodeId n = g.num_nodes();
  std::vector<NodeId> parent(static_cast<std::size_t>(n), -1);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  // Root each component at its minimum-identity node.
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return instance.identities[static_cast<std::size_t>(a)] <
           instance.identities[static_cast<std::size_t>(b)];
  });
  for (NodeId root : order) {
    if (seen[static_cast<std::size_t>(root)]) continue;
    seen[static_cast<std::size_t>(root)] = true;
    std::queue<NodeId> frontier;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId u : g.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = true;
          parent[static_cast<std::size_t>(u)] = v;
          frontier.push(u);
        }
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    std::int64_t port = -1;
    const NodeId p = parent[static_cast<std::size_t>(v)];
    if (p >= 0) {
      const auto& nbrs = g.neighbors(v);
      port = std::lower_bound(nbrs.begin(), nbrs.end(), p) - nbrs.begin();
    }
    instance.inputs[static_cast<std::size_t>(v)] = {port};
  }
  return instance;
}

}  // namespace unilocal
