#include "src/algo/luby.h"

#include "src/runtime/kernel.h"
#include "src/util/math.h"

namespace unilocal {

namespace {

// Message tags.
constexpr std::int64_t kTagValue = 0;   // [tag, rank, identity]
constexpr std::int64_t kTagJoined = 1;  // [tag]

class LubyProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const bool resolve_round = (ctx.round() % 2) == 1;
    if (!resolve_round) {
      // Retire if some neighbour joined in the previous resolve round.
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        const Message* m = ctx.received(j);
        if (m != nullptr && (*m)[0] == kTagJoined) {
          ctx.finish(0);
          return;
        }
      }
      rank_ = static_cast<std::int64_t>(ctx.rng().next() >> 1);
      ctx.broadcast({kTagValue, rank_, ctx.id()});
      return;
    }
    // Resolve: compare with undecided neighbours that sent values.
    bool smallest = true;
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m == nullptr || (*m)[0] != kTagValue) continue;
      const std::int64_t other_rank = (*m)[1];
      const std::int64_t other_id = (*m)[2];
      if (other_rank < rank_ ||
          (other_rank == rank_ && other_id < ctx.id())) {
        smallest = false;
        break;
      }
    }
    if (smallest) {
      ctx.broadcast({kTagJoined});
      ctx.finish(1);
    }
  }

 private:
  std::int64_t rank_ = 0;
};

class TruncatedProcess final : public Process {
 public:
  TruncatedProcess(std::unique_ptr<Process> inner, std::int64_t budget,
                   std::int64_t fallback)
      : inner_(std::move(inner)), budget_(budget), fallback_(fallback) {}

  void step(Context& ctx) override {
    if (ctx.round() >= budget_) {
      ctx.finish(fallback_);
      return;
    }
    inner_->step(ctx);
  }

 private:
  std::unique_ptr<Process> inner_;
  std::int64_t budget_;
  std::int64_t fallback_;
};

// --- flat-kernel lowering (mirrors LubyProcess::step bit-for-bit) -----------

struct LubyKernelState {
  std::int64_t rank;
};

void luby_kernel_propose(KernelCtx& ctx) {
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (present && m[0] == kTagJoined) {
      ctx.finish(0);
      return;
    }
  }
  auto& st = ctx.state_as<LubyKernelState>();
  st.rank = static_cast<std::int64_t>(ctx.rng->next() >> 1);
  ctx.broadcast({kTagValue, st.rank, ctx.identity});
}

void luby_kernel_resolve(KernelCtx& ctx) {
  const auto& st = ctx.state_as<LubyKernelState>();
  bool smallest = true;
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (!present || m[0] != kTagValue) continue;
    if (m[1] < st.rank || (m[1] == st.rank && m[2] < ctx.identity)) {
      smallest = false;
      break;
    }
  }
  if (smallest) {
    ctx.broadcast({kTagJoined});
    ctx.finish(1);
  }
}

// --- batched stepping (phase-grouped buckets; see KernelBatchCtx) -----------
//
// The batch fns run the same per-node bodies as the scalar phases, built
// inline over the bucket so the per-node indirect dispatch folds away. The
// resolve neighbour max-scan is restructured into fixed-width lanes — a
// branch-free beat-flag accumulation instead of an early-exit compare
// chain — which reads the same messages and sends the same words, so it
// stays bit-identical to the scalar phase.

constexpr NodeId kScanLanes = 4;

inline std::int64_t luby_port_beats(KernelCtx& ctx, std::int64_t rank,
                                    NodeId j) {
  bool present = false;
  const auto m = ctx.recv(j, &present);
  if (!present || m[0] != kTagValue) return 0;
  return (m[1] < rank || (m[1] == rank && m[2] < ctx.identity)) ? 1 : 0;
}

void luby_batch_propose(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    luby_kernel_propose(ctx);
    b.latch(i, ctx);
  }
}

void luby_batch_resolve(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    const auto& st = ctx.state_as<LubyKernelState>();
    std::int64_t beat[kScanLanes] = {};
    NodeId j = 0;
    for (; j + kScanLanes <= ctx.degree; j += kScanLanes)
      for (NodeId l = 0; l < kScanLanes; ++l)
        beat[l] |= luby_port_beats(ctx, st.rank, j + l);
    std::int64_t any = 0;
    for (NodeId l = 0; l < kScanLanes; ++l) any |= beat[l];
    for (; j < ctx.degree; ++j) any |= luby_port_beats(ctx, st.rank, j);
    if (any == 0) {
      ctx.broadcast({kTagJoined});
      ctx.finish(1);
    }
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_luby_kernel() {
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "luby";
  kernel->state_size = sizeof(LubyKernelState);
  kernel->state_align = alignof(LubyKernelState);
  kernel->phases = {{"propose", luby_kernel_propose, luby_batch_propose},
                    {"resolve", luby_kernel_resolve, luby_batch_resolve}};
  return kernel;
}

// --- truncation wrapper kernel ----------------------------------------------

struct TruncateKernelConfig {
  std::shared_ptr<const StepKernel> inner;
  std::int64_t budget;
  std::int64_t fallback;
};

void truncated_kernel_init(std::byte* state, const NodeInit& init,
                           const void* config) {
  const auto* cfg = static_cast<const TruncateKernelConfig*>(config);
  cfg->inner->init_fn(state, init, cfg->inner->config.get());
}

void truncated_kernel_step(KernelCtx& ctx) {
  const auto* cfg = static_cast<const TruncateKernelConfig*>(ctx.config);
  if (ctx.round >= cfg->budget) {
    ctx.finish(cfg->fallback);
    return;
  }
  const StepKernel& inner = *cfg->inner;
  ctx.config = inner.config.get();
  inner.phases[kernel_phase_index(inner, ctx.round, ctx.state)].fn(ctx);
  ctx.config = cfg;
}

// Forwards maximal same-inner-phase runs of the bucket to the inner kernel's
// batch fns, so truncation keeps the inner kernel's batching instead of
// degrading every step to a scalar dispatch. Past-budget nodes latch the
// fallback directly.
void truncated_kernel_batch(const KernelBatchCtx& b) {
  const auto* cfg = static_cast<const TruncateKernelConfig*>(b.config);
  const StepKernel& inner = *cfg->inner;
  std::size_t i = 0;
  while (i < b.count) {
    if (b.rounds[i] >= cfg->budget) {
      b.finished[b.nodes[i]] = 1;
      b.outputs[b.nodes[i]] = cfg->fallback;
      ++i;
      continue;
    }
    const auto inner_phase = [&](std::size_t k) {
      return kernel_phase_index(
          inner, b.rounds[k],
          b.state_base + static_cast<std::size_t>(b.nodes[k]) * b.stride);
    };
    const std::size_t p = inner_phase(i);
    std::size_t j = i + 1;
    while (j < b.count && b.rounds[j] < cfg->budget && inner_phase(j) == p)
      ++j;
    KernelBatchCtx sub = b;
    sub.nodes = b.nodes + i;
    sub.rounds = b.rounds + i;
    sub.count = j - i;
    sub.config = inner.config.get();
    const KernelPhase& phase = inner.phases[p];
    if (phase.batch != nullptr) {
      phase.batch(sub);
    } else {
      for (std::size_t k = 0; k < sub.count; ++k) {
        KernelCtx ctx = sub.node_ctx(k);
        phase.fn(ctx);
        sub.latch(k, ctx);
      }
    }
    i = j;
  }
}

std::shared_ptr<const StepKernel> make_truncated_kernel(
    std::shared_ptr<const StepKernel> inner, std::int64_t budget,
    std::int64_t fallback) {
  if (inner == nullptr) return nullptr;
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = inner->name + "@" + std::to_string(budget);
  kernel->state_size = inner->state_size;
  kernel->state_align = inner->state_align;
  kernel->port_state_words = inner->port_state_words;
  kernel->init_fn = inner->init_fn != nullptr ? truncated_kernel_init : nullptr;
  kernel->phases = {{"truncate", truncated_kernel_step, truncated_kernel_batch}};
  kernel->config = std::shared_ptr<const void>(
      std::make_shared<TruncateKernelConfig>(
          TruncateKernelConfig{std::move(inner), budget, fallback}));
  return kernel;
}

}  // namespace

std::unique_ptr<Process> LubyMis::spawn(const NodeInit&) const {
  return std::make_unique<LubyProcess>();
}

std::shared_ptr<const StepKernel> LubyMis::kernel() const {
  static const std::shared_ptr<const StepKernel> kernel = make_luby_kernel();
  return kernel;
}

TruncatedAlgorithm::TruncatedAlgorithm(std::shared_ptr<const Algorithm> inner,
                                       std::int64_t budget,
                                       std::int64_t fallback)
    : inner_(std::move(inner)),
      budget_(budget),
      fallback_(fallback),
      kernel_(make_truncated_kernel(inner_->kernel(), budget, fallback)) {}

std::shared_ptr<const StepKernel> TruncatedAlgorithm::kernel() const {
  return kernel_;
}

std::unique_ptr<Process> TruncatedAlgorithm::spawn(const NodeInit& init) const {
  return std::make_unique<TruncatedProcess>(inner_->spawn(init), budget_,
                                            fallback_);
}

std::string TruncatedAlgorithm::name() const {
  return inner_->name() + "@" + std::to_string(budget_);
}

std::int64_t luby_budget(std::int64_t n_guess) {
  return 2 * (6 * clog2(static_cast<std::uint64_t>(std::max<std::int64_t>(
                  2, n_guess))) +
              8);
}

namespace {

class TruncatedLubyMis final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "luby-mis-MC"; }
  ParamSet gamma() const override { return {Param::kNumNodes}; }
  ParamSet lambda() const override { return {Param::kNumNodes}; }
  const RuntimeBound& bound() const override { return bound_; }
  bool randomized() const override { return true; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return std::make_unique<TruncatedAlgorithm>(std::make_shared<LubyMis>(),
                                                luby_budget(guesses[0]));
  }

 private:
  AdditiveBound bound_{{BoundComponent{
      "luby_budget(n)",
      [](std::int64_t n) { return static_cast<double>(luby_budget(n)); }}}};
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_truncated_luby_mis() {
  return std::make_unique<TruncatedLubyMis>();
}

}  // namespace unilocal
