#include "src/algo/luby.h"

#include "src/util/math.h"

namespace unilocal {

namespace {

// Message tags.
constexpr std::int64_t kTagValue = 0;   // [tag, rank, identity]
constexpr std::int64_t kTagJoined = 1;  // [tag]

class LubyProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const bool resolve_round = (ctx.round() % 2) == 1;
    if (!resolve_round) {
      // Retire if some neighbour joined in the previous resolve round.
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        const Message* m = ctx.received(j);
        if (m != nullptr && (*m)[0] == kTagJoined) {
          ctx.finish(0);
          return;
        }
      }
      rank_ = static_cast<std::int64_t>(ctx.rng().next() >> 1);
      ctx.broadcast({kTagValue, rank_, ctx.id()});
      return;
    }
    // Resolve: compare with undecided neighbours that sent values.
    bool smallest = true;
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m == nullptr || (*m)[0] != kTagValue) continue;
      const std::int64_t other_rank = (*m)[1];
      const std::int64_t other_id = (*m)[2];
      if (other_rank < rank_ ||
          (other_rank == rank_ && other_id < ctx.id())) {
        smallest = false;
        break;
      }
    }
    if (smallest) {
      ctx.broadcast({kTagJoined});
      ctx.finish(1);
    }
  }

 private:
  std::int64_t rank_ = 0;
};

class TruncatedProcess final : public Process {
 public:
  TruncatedProcess(std::unique_ptr<Process> inner, std::int64_t budget,
                   std::int64_t fallback)
      : inner_(std::move(inner)), budget_(budget), fallback_(fallback) {}

  void step(Context& ctx) override {
    if (ctx.round() >= budget_) {
      ctx.finish(fallback_);
      return;
    }
    inner_->step(ctx);
  }

 private:
  std::unique_ptr<Process> inner_;
  std::int64_t budget_;
  std::int64_t fallback_;
};

}  // namespace

std::unique_ptr<Process> LubyMis::spawn(const NodeInit&) const {
  return std::make_unique<LubyProcess>();
}

TruncatedAlgorithm::TruncatedAlgorithm(std::shared_ptr<const Algorithm> inner,
                                       std::int64_t budget,
                                       std::int64_t fallback)
    : inner_(std::move(inner)), budget_(budget), fallback_(fallback) {}

std::unique_ptr<Process> TruncatedAlgorithm::spawn(const NodeInit& init) const {
  return std::make_unique<TruncatedProcess>(inner_->spawn(init), budget_,
                                            fallback_);
}

std::string TruncatedAlgorithm::name() const {
  return inner_->name() + "@" + std::to_string(budget_);
}

std::int64_t luby_budget(std::int64_t n_guess) {
  return 2 * (6 * clog2(static_cast<std::uint64_t>(std::max<std::int64_t>(
                  2, n_guess))) +
              8);
}

namespace {

class TruncatedLubyMis final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "luby-mis-MC"; }
  ParamSet gamma() const override { return {Param::kNumNodes}; }
  ParamSet lambda() const override { return {Param::kNumNodes}; }
  const RuntimeBound& bound() const override { return bound_; }
  bool randomized() const override { return true; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return std::make_unique<TruncatedAlgorithm>(std::make_shared<LubyMis>(),
                                                luby_budget(guesses[0]));
  }

 private:
  AdditiveBound bound_{{BoundComponent{
      "luby_budget(n)",
      [](std::int64_t n) { return static_cast<double>(luby_budget(n)); }}}};
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_truncated_luby_mis() {
  return std::make_unique<TruncatedLubyMis>();
}

}  // namespace unilocal
