// Deterministic maximal matching via colored proposal phases — the
// library's documented stand-in for the Hanckowiak et al. O(log^4 n) MM of
// Table 1 row 8 (DESIGN.md).
//
// After a (deg+1)-coloring, vertex color classes take turns: in its phase,
// an unmatched node proposes to its still-unmatched neighbours one by one; a
// proposal target accepts the smallest-identity proposer. Same-colored nodes
// are non-adjacent, so proposers never race with adjacent proposers. A node
// leaving its phase unmatched has certified that all its neighbours are
// matched — which is exactly the maximal-matching condition, and matching
// edges never dissolve, so the certificate stays valid.
//
// Outputs use the identity-pair encoding of src/problems/matching.h (the
// encoding that makes the paper's P_MM gluing collision-free).
// Gamma = Lambda = {Delta, m}; f = O(Delta~^2) + O(log* m~), additive.
#pragma once

#include <memory>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

/// The proposal stage alone (input[0] = vertex color in [1, delta_guess+1]).
class ProposalMatching final : public Algorithm {
 public:
  explicit ProposalMatching(std::int64_t delta_guess);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::shared_ptr<const StepKernel> kernel() const override;
  std::string name() const override;
  std::int64_t schedule_rounds() const noexcept { return rounds_; }

 private:
  std::int64_t delta_guess_;
  std::int64_t rounds_;
  std::shared_ptr<const StepKernel> kernel_;
};

/// Full pipeline: Linial -> (deg+1) reduction -> proposal phases.
std::unique_ptr<Algorithm> make_matching_algorithm(std::int64_t delta_guess,
                                                   std::int64_t m_guess);

std::unique_ptr<NonUniformAlgorithm> make_colored_matching();

}  // namespace unilocal
