// Randomized (2, beta)-ruling set by distance-beta Luby phases — the
// library's substitute for the Schneider-Wattenhofer (2, 2(c+1))-ruling-set
// algorithm of Table 1 row 9 (DESIGN.md).
//
// Each phase: undecided nodes draw a random rank and flood the minimum
// (rank, identity) pair beta hops; a node holding the strict minimum of its
// beta-ball joins, then floods a domination wave beta hops that retires the
// nodes it reaches. Members end up pairwise non-adjacent (a joiner's
// neighbours are dominated in the same phase) and every retired node is
// within beta of a member.
//
// Run to completion this is a uniform Las Vegas algorithm; truncated to the
// budget derived from a guess n~ it is the weak Monte-Carlo A_{n} handed to
// the Theorem 2 transformer.
#pragma once

#include <memory>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

class BetaLubyRulingSet final : public Algorithm {
 public:
  explicit BetaLubyRulingSet(int beta);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::shared_ptr<const StepKernel> kernel() const override;
  std::string name() const override;
  int beta() const noexcept { return beta_; }
  std::int64_t phase_rounds() const noexcept { return 2 * beta_ + 2; }

 private:
  int beta_;
  std::shared_ptr<const StepKernel> kernel_;
};

std::int64_t beta_luby_budget(int beta, std::int64_t n_guess);

/// The weak Monte-Carlo wrapper: Gamma = Lambda = {n},
/// f(n~) = beta_luby_budget(beta, n~).
std::unique_ptr<NonUniformAlgorithm> make_mc_ruling_set(int beta);

}  // namespace unilocal
