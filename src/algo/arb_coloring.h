// O(a~^2)-coloring for bounded-arboricity graphs: H-partition layers induce
// an acyclic orientation with out-degree <= 3*a~; running Linial's reduction
// against *out-neighbours only* still yields a proper coloring (every edge
// is outgoing for one endpoint) while the polynomial separation argument
// only has to beat 3*a~ conflicts — so the fixed point is O(a~^2) colors
// instead of O(Delta^2), independent of Delta.
//
// This is the forests-decomposition coloring route of Barenboim-Elkin
// (DESIGN.md substitution notes). Gamma = Lambda = {a, n, m};
// f = O(a~^2) + O(log n~) + O(log* m~), additive — the Theorem 3 showcase
// (a is weakly dominated by n).
#pragma once

#include <memory>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

/// The orientation-aware Linial stage: input[0] = H-partition layer.
class OutLinialColoring final : public Algorithm {
 public:
  /// out_degree_bound: the orientation's out-degree cap (3*a~).
  OutLinialColoring(std::int64_t out_degree_bound, std::int64_t m_guess);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::shared_ptr<const StepKernel> kernel() const override;
  std::string name() const override;

  std::int64_t final_space() const noexcept;
  std::int64_t schedule_rounds() const noexcept;

  struct Impl;

 private:
  std::shared_ptr<const Impl> impl_;
  std::shared_ptr<const StepKernel> kernel_;
};

/// Full pipeline: H-partition -> out-Linial. Colors in [1, O(a~^2)].
std::unique_ptr<Algorithm> make_arb_coloring_algorithm(
    std::int64_t arboricity_guess, std::int64_t n_guess, std::int64_t m_guess);

std::unique_ptr<NonUniformAlgorithm> make_arb_coloring();

}  // namespace unilocal
