// The Barenboim-Elkin H-partition (Nash-Williams peeling): with guesses
// (a~, n~), repeatedly peel every node whose residual degree is at most
// 3*a~. While a~ upper-bounds the arboricity, each phase removes at least a
// third of the residual graph (sum of degrees <= 2*a*|V| < (2/3)*3*a~*|V|),
// so ceil(log_{3/2} n~) + 1 phases empty the graph. Output: the 1-based
// layer index (0 when the node never peeled — only possible under bad
// guesses).
//
// Orienting every edge toward the (layer, identity)-larger endpoint yields
// an acyclic orientation with out-degree <= 3*a~: the foundation of the
// forest decomposition and of the arboricity MIS (Table 1 rows 3-4).
#pragma once

#include <memory>

#include "src/runtime/local.h"

namespace unilocal {

class HPartition final : public Algorithm {
 public:
  HPartition(std::int64_t arboricity_guess, std::int64_t n_guess);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::shared_ptr<const StepKernel> kernel() const override;
  std::string name() const override;

  std::int64_t threshold() const noexcept { return threshold_; }
  std::int64_t num_phases() const noexcept { return phases_; }
  std::int64_t schedule_rounds() const noexcept { return phases_ + 2; }

  /// ceil(log_{3/2} n~) + 1.
  static std::int64_t phases_for(std::int64_t n_guess);

 private:
  std::int64_t threshold_;
  std::int64_t phases_;
  std::shared_ptr<const StepKernel> kernel_;
};

}  // namespace unilocal
