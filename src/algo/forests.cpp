#include "src/algo/forests.h"

#include <algorithm>

namespace unilocal {

std::vector<std::vector<NodeId>> orientation_from_layers(
    const Instance& instance, const std::vector<std::int64_t>& layers) {
  const Graph& g = instance.graph;
  std::vector<std::vector<NodeId>> out(
      static_cast<std::size_t>(g.num_nodes()));
  auto key = [&](NodeId v) {
    return std::make_pair(layers[static_cast<std::size_t>(v)],
                          instance.identities[static_cast<std::size_t>(v)]);
  };
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (key(v) < key(u)) out[static_cast<std::size_t>(v)].push_back(u);
    }
    std::sort(out[static_cast<std::size_t>(v)].begin(),
              out[static_cast<std::size_t>(v)].end(),
              [&](NodeId a, NodeId b) { return key(a) < key(b); });
  }
  return out;
}

NodeId max_out_degree(const std::vector<std::vector<NodeId>>& out) {
  std::size_t best = 0;
  for (const auto& list : out) best = std::max(best, list.size());
  return static_cast<NodeId>(best);
}

std::vector<std::vector<std::pair<NodeId, NodeId>>> forest_split(
    const std::vector<std::vector<NodeId>>& out) {
  std::vector<std::vector<std::pair<NodeId, NodeId>>> forests(
      static_cast<std::size_t>(max_out_degree(out)));
  for (NodeId v = 0; v < static_cast<NodeId>(out.size()); ++v) {
    const auto& list = out[static_cast<std::size_t>(v)];
    for (std::size_t r = 0; r < list.size(); ++r)
      forests[r].emplace_back(v, list[r]);
  }
  return forests;
}

std::vector<std::int64_t> central_hpartition(const Graph& g,
                                             std::int64_t threshold,
                                             std::int64_t phases) {
  const NodeId n = g.num_nodes();
  std::vector<std::int64_t> layers(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> residual(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    residual[static_cast<std::size_t>(v)] = g.degree(v);
  for (std::int64_t phase = 1; phase <= phases; ++phase) {
    std::vector<NodeId> peeled;
    for (NodeId v = 0; v < n; ++v) {
      if (layers[static_cast<std::size_t>(v)] == 0 &&
          residual[static_cast<std::size_t>(v)] <= threshold)
        peeled.push_back(v);
    }
    for (NodeId v : peeled) layers[static_cast<std::size_t>(v)] = phase;
    for (NodeId v : peeled) {
      for (NodeId u : g.neighbors(v)) {
        if (layers[static_cast<std::size_t>(u)] == 0)
          --residual[static_cast<std::size_t>(u)];
      }
    }
  }
  return layers;
}

}  // namespace unilocal
