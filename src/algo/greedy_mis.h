// Deterministic greedy-by-identity MIS: a node joins once its identity is
// the smallest among undecided closed neighbours; neighbours of joiners
// retire. Uniform (never reads a global parameter) and always correct, but
// its worst-case running time is Theta(n) (identities sorted along a path).
//
// This is the library's documented stand-in for the Panconesi-Srinivasan
// 2^O(sqrt(log n)) black box of Table 1 row 2 (see DESIGN.md): wrapped as a
// non-uniform algorithm whose declared running-time bound is f(n~) = 2n~+4,
// it exercises exactly the Theorem 1 setting (a bound depending on n only).
#pragma once

#include <memory>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

class GreedyMis final : public Algorithm {
 public:
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::string name() const override { return "greedy-mis"; }
  /// Flat-kernel lowering ("greedy-mis" in the kernel registry).
  std::shared_ptr<const StepKernel> kernel() const override;
};

/// Greedy MIS wrapped as A_{n}: Gamma = Lambda = {n}, f(n~) = 2n~ + 4.
std::unique_ptr<NonUniformAlgorithm> make_global_mis();

}  // namespace unilocal
