#include "src/algo/color_reduce.h"

#include <algorithm>
#include <vector>

#include "src/runtime/kernel.h"

namespace unilocal {

namespace {

class ColorReduceProcess final : public Process {
 public:
  ColorReduceProcess(std::int64_t k_start, std::int64_t target,
                     std::int64_t rounds)
      : k_start_(k_start), target_(target), rounds_(rounds) {}

  void step(Context& ctx) override {
    if (ctx.round() == 0) {
      color_ = ctx.input().empty() ? 1 : std::max<std::int64_t>(ctx.input()[0], 1);
      nbr_colors_.assign(static_cast<std::size_t>(ctx.degree()), -1);
      if (rounds_ == 1) {
        ctx.finish(color_);
        return;
      }
      ctx.broadcast({color_});
      return;
    }
    // Update the neighbour-color cache (only changed colors arrive).
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m != nullptr) nbr_colors_[static_cast<std::size_t>(j)] = (*m)[0];
    }
    const std::int64_t palette_max =
        target_ <= 0 ? static_cast<std::int64_t>(ctx.degree()) + 1 : target_;
    // Round r eliminates color value k_start - r + 1.
    const std::int64_t eliminated = k_start_ - ctx.round() + 1;
    if (color_ == eliminated && color_ > palette_max) {
      color_ = smallest_free(palette_max);
      if (ctx.round() + 1 < rounds_) ctx.broadcast({color_});
    }
    if (ctx.round() + 1 >= rounds_) ctx.finish(color_);
  }

 private:
  std::int64_t smallest_free(std::int64_t palette_max) const {
    std::vector<bool> used(static_cast<std::size_t>(palette_max) + 1, false);
    for (std::int64_t c : nbr_colors_) {
      if (c >= 1 && c <= palette_max) used[static_cast<std::size_t>(c)] = true;
    }
    for (std::int64_t c = 1; c <= palette_max; ++c) {
      if (!used[static_cast<std::size_t>(c)]) return c;
    }
    return palette_max;  // unreachable under good inputs
  }

  std::int64_t k_start_;
  std::int64_t target_;
  std::int64_t rounds_;
  std::int64_t color_ = 1;
  std::vector<std::int64_t> nbr_colors_;
};

// --- flat-kernel lowering (mirrors ColorReduceProcess::step bit-for-bit) ----
//
// The per-node neighbour-color cache moves into the engine's per-port state
// arena (one word per directed edge); the smallest-free scan reuses the
// per-thread scratch vector as a used[] flag array.

struct ColorReduceKernelConfig {
  std::int64_t k_start;
  std::int64_t target;
  std::int64_t rounds;
};

struct ColorReduceKernelState {
  std::int64_t color;
};

void color_reduce_kernel_init(KernelCtx& ctx) {
  const auto* cfg = static_cast<const ColorReduceKernelConfig*>(ctx.config);
  auto& st = ctx.state_as<ColorReduceKernelState>();
  st.color =
      ctx.input.empty() ? 1 : std::max<std::int64_t>(ctx.input[0], 1);
  for (NodeId j = 0; j < ctx.degree; ++j) ctx.port_state[j] = -1;
  if (cfg->rounds == 1) {
    ctx.finish(st.color);
    return;
  }
  ctx.broadcast({st.color});
}

// Palette intersection: marks each cached neighbour color in used[]. Lane
// structure with used[0] as a branch-free dump slot for out-of-palette
// entries (colors are >= 1, so slot 0 is never scanned) — the inner loop has
// no data-dependent branch and vectorizes as compare/select/scatter.
inline void color_reduce_mark_used(const std::int64_t* port_state,
                                   NodeId degree, std::int64_t palette_max,
                                   std::vector<std::int64_t>& used) {
  constexpr NodeId kLanes = 4;
  used.assign(static_cast<std::size_t>(palette_max) + 1, 0);
  NodeId j = 0;
  for (; j + kLanes <= degree; j += kLanes) {
    for (NodeId l = 0; l < kLanes; ++l) {
      const std::int64_t c = port_state[j + l];
      const bool in_palette = c >= 1 && c <= palette_max;
      used[static_cast<std::size_t>(in_palette ? c : 0)] = 1;
    }
  }
  for (; j < degree; ++j) {
    const std::int64_t c = port_state[j];
    const bool in_palette = c >= 1 && c <= palette_max;
    used[static_cast<std::size_t>(in_palette ? c : 0)] = 1;
  }
}

void color_reduce_kernel_eliminate(KernelCtx& ctx) {
  const auto* cfg = static_cast<const ColorReduceKernelConfig*>(ctx.config);
  auto& st = ctx.state_as<ColorReduceKernelState>();
  // Update the neighbour-color cache (only changed colors arrive).
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (present) ctx.port_state[j] = m[0];
  }
  const std::int64_t palette_max =
      cfg->target <= 0 ? static_cast<std::int64_t>(ctx.degree) + 1
                       : cfg->target;
  // Round r eliminates color value k_start - r + 1.
  const std::int64_t eliminated = cfg->k_start - ctx.round + 1;
  if (st.color == eliminated && st.color > palette_max) {
    auto& used = *ctx.scratch;
    color_reduce_mark_used(ctx.port_state, ctx.degree, palette_max, used);
    std::int64_t chosen = palette_max;  // unreachable under good inputs
    for (std::int64_t c = 1; c <= palette_max; ++c) {
      if (used[static_cast<std::size_t>(c)] == 0) {
        chosen = c;
        break;
      }
    }
    st.color = chosen;
    if (ctx.round + 1 < cfg->rounds) ctx.broadcast({st.color});
  }
  if (ctx.round + 1 >= cfg->rounds) ctx.finish(st.color);
}

// --- batched stepping (phase-grouped buckets; see KernelBatchCtx) -----------

void color_reduce_batch_init(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    color_reduce_kernel_init(ctx);
    b.latch(i, ctx);
  }
}

void color_reduce_batch_eliminate(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    color_reduce_kernel_eliminate(ctx);
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_color_reduce_kernel(
    std::int64_t k_start, std::int64_t target, std::int64_t rounds) {
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "color-reduce";
  kernel->state_size = sizeof(ColorReduceKernelState);
  kernel->state_align = alignof(ColorReduceKernelState);
  kernel->port_state_words = 1;
  kernel->phases = {
      {"init", color_reduce_kernel_init, color_reduce_batch_init},
      {"eliminate", color_reduce_kernel_eliminate,
       color_reduce_batch_eliminate}};
  kernel->select_fn = [](std::int64_t round, const std::byte*,
                         const void*) -> std::uint16_t {
    return round == 0 ? 0 : 1;
  };
  kernel->config = std::shared_ptr<const void>(
      std::make_shared<ColorReduceKernelConfig>(
          ColorReduceKernelConfig{k_start, target, rounds}));
  return kernel;
}

}  // namespace

ColorReduce::ColorReduce(std::int64_t k_start, std::int64_t target)
    : k_start_(std::max<std::int64_t>(k_start, 1)), target_(target) {
  // Eliminations run from color k_start down to (target+1) in fixed mode
  // and down to 2 in (deg+1) mode; plus the broadcast round 0.
  const std::int64_t floor_color = target_ <= 0 ? 1 : target_;
  rounds_ = std::max<std::int64_t>(k_start_ - floor_color, 0) + 1;
  kernel_ = make_color_reduce_kernel(k_start_, target_, rounds_);
}

std::shared_ptr<const StepKernel> ColorReduce::kernel() const {
  return kernel_;
}

std::unique_ptr<Process> ColorReduce::spawn(const NodeInit&) const {
  return std::make_unique<ColorReduceProcess>(k_start_, target_, rounds_);
}

std::string ColorReduce::name() const {
  return "color-reduce(" + std::to_string(k_start_) + "->" +
         (target_ <= 0 ? std::string("deg+1") : std::to_string(target_)) + ")";
}

}  // namespace unilocal
