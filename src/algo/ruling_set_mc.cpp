#include "src/algo/ruling_set_mc.h"

#include <algorithm>

#include "src/algo/luby.h"
#include "src/util/math.h"

namespace unilocal {

namespace {

// Message layout: [kind, payload...].
constexpr std::int64_t kKindMin = 0;  // payload: rank, identity
constexpr std::int64_t kKindDom = 1;  // payload: remaining hops

class BetaLubyProcess final : public Process {
 public:
  explicit BetaLubyProcess(int beta) : beta_(beta) {}

  void step(Context& ctx) override {
    const std::int64_t period = 2 * beta_ + 2;
    const std::int64_t phase_round = ctx.round() % period;
    if (phase_round == 0) {
      // Fresh phase. (Domination waves cannot straddle phases: they start
      // at phase round beta+1 and travel beta-1 more hops, ending by round
      // 2*beta < period.)
      rank_ = static_cast<std::int64_t>(ctx.rng().next() >> 1);
      min_rank_ = rank_;
      min_id_ = ctx.id();
      dominated_ = false;
      ctx.broadcast({kKindMin, rank_, ctx.id()});
      return;
    }
    // Ingest.
    std::int64_t dom_hops = -1;
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m == nullptr) continue;
      if ((*m)[0] == kKindMin) {
        if ((*m)[1] < min_rank_ ||
            ((*m)[1] == min_rank_ && (*m)[2] < min_id_)) {
          min_rank_ = (*m)[1];
          min_id_ = (*m)[2];
        }
      } else if ((*m)[0] == kKindDom) {
        dominated_ = true;
        dom_hops = std::max(dom_hops, (*m)[1]);
      }
    }
    if (phase_round <= beta_ - 1) {
      // Still flooding minima.
      ctx.broadcast({kKindMin, min_rank_, min_id_});
      return;
    }
    if (phase_round == beta_) {
      // Join decision: strict minimum of the beta-ball.
      if (min_rank_ == rank_ && min_id_ == ctx.id()) {
        if (beta_ >= 1) ctx.broadcast({kKindDom, beta_ - 1});
        ctx.finish(1);
      }
      return;
    }
    // Domination wave (phase rounds beta+1 .. 2*beta).
    if (dominated_) {
      if (dom_hops >= 1) ctx.broadcast({kKindDom, dom_hops - 1});
      ctx.finish(0);
      return;
    }
  }

 private:
  int beta_;
  std::int64_t rank_ = 0;
  std::int64_t min_rank_ = 0;
  std::int64_t min_id_ = 0;
  bool dominated_ = false;
};

}  // namespace

BetaLubyRulingSet::BetaLubyRulingSet(int beta) : beta_(std::max(beta, 1)) {}

std::unique_ptr<Process> BetaLubyRulingSet::spawn(const NodeInit&) const {
  return std::make_unique<BetaLubyProcess>(beta_);
}

std::string BetaLubyRulingSet::name() const {
  return "beta-luby-ruling-set(b=" + std::to_string(beta_) + ")";
}

std::int64_t beta_luby_budget(int beta, std::int64_t n_guess) {
  const std::int64_t phases =
      6 * clog2(static_cast<std::uint64_t>(std::max<std::int64_t>(n_guess, 2))) +
      8;
  return (2 * static_cast<std::int64_t>(beta) + 2) * phases;
}

namespace {

class McRulingSet final : public NonUniformAlgorithm {
 public:
  explicit McRulingSet(int beta) : beta_(beta), bound_(make_bound(beta)) {}

  std::string name() const override {
    return "mc-(2," + std::to_string(beta_) + ")-ruling-set";
  }
  ParamSet gamma() const override { return {Param::kNumNodes}; }
  ParamSet lambda() const override { return {Param::kNumNodes}; }
  const RuntimeBound& bound() const override { return bound_; }
  bool randomized() const override { return true; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return std::make_unique<TruncatedAlgorithm>(
        std::make_shared<BetaLubyRulingSet>(beta_),
        beta_luby_budget(beta_, guesses[0]));
  }

 private:
  static AdditiveBound make_bound(int beta) {
    return AdditiveBound{{BoundComponent{
        "budget(n)", [beta](std::int64_t n) {
          return static_cast<double>(beta_luby_budget(beta, n));
        }}}};
  }
  int beta_;
  AdditiveBound bound_;
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_mc_ruling_set(int beta) {
  return std::make_unique<McRulingSet>(beta);
}

}  // namespace unilocal
