#include "src/algo/ruling_set_mc.h"

#include <algorithm>

#include "src/algo/luby.h"
#include "src/runtime/kernel.h"
#include "src/util/math.h"

namespace unilocal {

namespace {

// Message layout: [kind, payload...].
constexpr std::int64_t kKindMin = 0;  // payload: rank, identity
constexpr std::int64_t kKindDom = 1;  // payload: remaining hops

class BetaLubyProcess final : public Process {
 public:
  explicit BetaLubyProcess(int beta) : beta_(beta) {}

  void step(Context& ctx) override {
    const std::int64_t period = 2 * beta_ + 2;
    const std::int64_t phase_round = ctx.round() % period;
    if (phase_round == 0) {
      // Fresh phase. (Domination waves cannot straddle phases: they start
      // at phase round beta+1 and travel beta-1 more hops, ending by round
      // 2*beta < period.)
      rank_ = static_cast<std::int64_t>(ctx.rng().next() >> 1);
      min_rank_ = rank_;
      min_id_ = ctx.id();
      dominated_ = false;
      ctx.broadcast({kKindMin, rank_, ctx.id()});
      return;
    }
    // Ingest.
    std::int64_t dom_hops = -1;
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m == nullptr) continue;
      if ((*m)[0] == kKindMin) {
        if ((*m)[1] < min_rank_ ||
            ((*m)[1] == min_rank_ && (*m)[2] < min_id_)) {
          min_rank_ = (*m)[1];
          min_id_ = (*m)[2];
        }
      } else if ((*m)[0] == kKindDom) {
        dominated_ = true;
        dom_hops = std::max(dom_hops, (*m)[1]);
      }
    }
    if (phase_round <= beta_ - 1) {
      // Still flooding minima.
      ctx.broadcast({kKindMin, min_rank_, min_id_});
      return;
    }
    if (phase_round == beta_) {
      // Join decision: strict minimum of the beta-ball.
      if (min_rank_ == rank_ && min_id_ == ctx.id()) {
        if (beta_ >= 1) ctx.broadcast({kKindDom, beta_ - 1});
        ctx.finish(1);
      }
      return;
    }
    // Domination wave (phase rounds beta+1 .. 2*beta).
    if (dominated_) {
      if (dom_hops >= 1) ctx.broadcast({kKindDom, dom_hops - 1});
      ctx.finish(0);
      return;
    }
  }

 private:
  int beta_;
  std::int64_t rank_ = 0;
  std::int64_t min_rank_ = 0;
  std::int64_t min_id_ = 0;
  bool dominated_ = false;
};

// --- flat-kernel lowering (mirrors BetaLubyProcess::step bit-for-bit) -------

struct BetaLubyKernelConfig {
  std::int64_t beta;
  std::int64_t period;  // 2*beta + 2
};

struct BetaLubyKernelState {
  std::int64_t rank;
  std::int64_t min_rank;
  std::int64_t min_id;
  std::int64_t dominated;
};

// One-pass port ingest shared by the flood/join/dom phases: folds minima
// into the state and returns this round's maximum domination-hop payload
// (-1 when none arrived).
inline std::int64_t beta_luby_ingest(KernelCtx& ctx,
                                     BetaLubyKernelState& st) {
  std::int64_t dom_hops = -1;
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (!present) continue;
    if (m[0] == kKindMin) {
      if (m[1] < st.min_rank || (m[1] == st.min_rank && m[2] < st.min_id)) {
        st.min_rank = m[1];
        st.min_id = m[2];
      }
    } else if (m[0] == kKindDom) {
      st.dominated = 1;
      dom_hops = std::max(dom_hops, m[1]);
    }
  }
  return dom_hops;
}

void beta_luby_kernel_fresh(KernelCtx& ctx) {
  auto& st = ctx.state_as<BetaLubyKernelState>();
  st.rank = static_cast<std::int64_t>(ctx.rng->next() >> 1);
  st.min_rank = st.rank;
  st.min_id = ctx.identity;
  st.dominated = 0;
  ctx.broadcast({kKindMin, st.rank, ctx.identity});
}

void beta_luby_kernel_flood(KernelCtx& ctx) {
  auto& st = ctx.state_as<BetaLubyKernelState>();
  beta_luby_ingest(ctx, st);
  ctx.broadcast({kKindMin, st.min_rank, st.min_id});
}

void beta_luby_kernel_join(KernelCtx& ctx) {
  const auto* cfg = static_cast<const BetaLubyKernelConfig*>(ctx.config);
  auto& st = ctx.state_as<BetaLubyKernelState>();
  beta_luby_ingest(ctx, st);
  if (st.min_rank == st.rank && st.min_id == ctx.identity) {
    if (cfg->beta >= 1) ctx.broadcast({kKindDom, cfg->beta - 1});
    ctx.finish(1);
  }
}

void beta_luby_kernel_dom(KernelCtx& ctx) {
  auto& st = ctx.state_as<BetaLubyKernelState>();
  const std::int64_t dom_hops = beta_luby_ingest(ctx, st);
  if (st.dominated != 0) {
    if (dom_hops >= 1) ctx.broadcast({kKindDom, dom_hops - 1});
    ctx.finish(0);
  }
}

void beta_luby_batch_fresh(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    beta_luby_kernel_fresh(ctx);
    b.latch(i, ctx);
  }
}

void beta_luby_batch_flood(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    beta_luby_kernel_flood(ctx);
    b.latch(i, ctx);
  }
}

void beta_luby_batch_join(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    beta_luby_kernel_join(ctx);
    b.latch(i, ctx);
  }
}

void beta_luby_batch_dom(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    beta_luby_kernel_dom(ctx);
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_beta_luby_kernel(int beta) {
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "beta-luby";
  kernel->state_size = sizeof(BetaLubyKernelState);
  kernel->state_align = alignof(BetaLubyKernelState);
  kernel->phases = {
      {"fresh", beta_luby_kernel_fresh, beta_luby_batch_fresh},
      {"flood", beta_luby_kernel_flood, beta_luby_batch_flood},
      {"join", beta_luby_kernel_join, beta_luby_batch_join},
      {"dom", beta_luby_kernel_dom, beta_luby_batch_dom}};
  kernel->select_fn = [](std::int64_t round, const std::byte*,
                         const void* config) -> std::uint16_t {
    const auto* cfg = static_cast<const BetaLubyKernelConfig*>(config);
    const std::int64_t pr = round % cfg->period;
    if (pr == 0) return 0;
    if (pr <= cfg->beta - 1) return 1;
    if (pr == cfg->beta) return 2;
    return 3;
  };
  kernel->config = std::shared_ptr<const void>(
      std::make_shared<BetaLubyKernelConfig>(
          BetaLubyKernelConfig{beta, 2 * static_cast<std::int64_t>(beta) + 2}));
  return kernel;
}

}  // namespace

BetaLubyRulingSet::BetaLubyRulingSet(int beta)
    : beta_(std::max(beta, 1)), kernel_(make_beta_luby_kernel(beta_)) {}

std::unique_ptr<Process> BetaLubyRulingSet::spawn(const NodeInit&) const {
  return std::make_unique<BetaLubyProcess>(beta_);
}

std::shared_ptr<const StepKernel> BetaLubyRulingSet::kernel() const {
  return kernel_;
}

std::string BetaLubyRulingSet::name() const {
  return "beta-luby-ruling-set(b=" + std::to_string(beta_) + ")";
}

std::int64_t beta_luby_budget(int beta, std::int64_t n_guess) {
  const std::int64_t phases =
      6 * clog2(static_cast<std::uint64_t>(std::max<std::int64_t>(n_guess, 2))) +
      8;
  return (2 * static_cast<std::int64_t>(beta) + 2) * phases;
}

namespace {

class McRulingSet final : public NonUniformAlgorithm {
 public:
  explicit McRulingSet(int beta) : beta_(beta), bound_(make_bound(beta)) {}

  std::string name() const override {
    return "mc-(2," + std::to_string(beta_) + ")-ruling-set";
  }
  ParamSet gamma() const override { return {Param::kNumNodes}; }
  ParamSet lambda() const override { return {Param::kNumNodes}; }
  const RuntimeBound& bound() const override { return bound_; }
  bool randomized() const override { return true; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return std::make_unique<TruncatedAlgorithm>(
        std::make_shared<BetaLubyRulingSet>(beta_),
        beta_luby_budget(beta_, guesses[0]));
  }

 private:
  static AdditiveBound make_bound(int beta) {
    return AdditiveBound{{BoundComponent{
        "budget(n)", [beta](std::int64_t n) {
          return static_cast<double>(beta_luby_budget(beta, n));
        }}}};
  }
  int beta_;
  AdditiveBound bound_;
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_mc_ruling_set(int beta) {
  return std::make_unique<McRulingSet>(beta);
}

}  // namespace unilocal
