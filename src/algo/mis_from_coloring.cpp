#include "src/algo/mis_from_coloring.h"

#include <algorithm>

#include "src/algo/color_reduce.h"
#include "src/algo/linial.h"
#include "src/runtime/chain.h"
#include "src/runtime/kernel.h"
#include "src/util/math.h"

namespace unilocal {

namespace {

class MisColorSweepProcess final : public Process {
 public:
  explicit MisColorSweepProcess(std::int64_t num_colors)
      : num_colors_(num_colors) {}

  void step(Context& ctx) override {
    if (ctx.round() == 0) {
      color_ = ctx.input().empty() ? 1 : ctx.input()[0];
      return;  // nothing to send: no one has joined yet
    }
    // Learn of joins decided in the previous round.
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m != nullptr && (*m)[0] == 1) {
        ctx.finish(0);  // dominated
        return;
      }
    }
    if (ctx.round() == color_) {
      ctx.broadcast({1});
      ctx.finish(1);
      return;
    }
    if (ctx.round() >= num_colors_ + 1) ctx.finish(0);
  }

 private:
  std::int64_t num_colors_;
  std::int64_t color_ = 1;
};

// --- flat-kernel lowering (mirrors MisColorSweepProcess::step bit-for-bit) --

struct MisColorSweepKernelConfig {
  std::int64_t num_colors;
};

struct MisColorSweepKernelState {
  std::int64_t color;
};

void mis_sweep_kernel_round0(KernelCtx& ctx) {
  auto& st = ctx.state_as<MisColorSweepKernelState>();
  st.color = ctx.input.empty() ? 1 : ctx.input[0];
  // Nothing to send: no one has joined yet.
}

void mis_sweep_kernel_sweep(KernelCtx& ctx) {
  const auto* cfg = static_cast<const MisColorSweepKernelConfig*>(ctx.config);
  const auto& st = ctx.state_as<MisColorSweepKernelState>();
  // Learn of joins decided in the previous round.
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (present && m[0] == 1) {
      ctx.finish(0);  // dominated
      return;
    }
  }
  if (ctx.round == st.color) {
    ctx.broadcast({1});
    ctx.finish(1);
    return;
  }
  if (ctx.round >= cfg->num_colors + 1) ctx.finish(0);
}

void mis_sweep_batch_round0(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    mis_sweep_kernel_round0(ctx);
    b.latch(i, ctx);
  }
}

void mis_sweep_batch_sweep(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    mis_sweep_kernel_sweep(ctx);
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_mis_sweep_kernel(
    std::int64_t num_colors) {
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "mis-color-sweep";
  kernel->state_size = sizeof(MisColorSweepKernelState);
  kernel->state_align = alignof(MisColorSweepKernelState);
  kernel->phases = {
      {"round0", mis_sweep_kernel_round0, mis_sweep_batch_round0},
      {"sweep", mis_sweep_kernel_sweep, mis_sweep_batch_sweep}};
  kernel->select_fn = [](std::int64_t round, const std::byte*,
                         const void*) -> std::uint16_t {
    return round == 0 ? 0 : 1;
  };
  kernel->config = std::shared_ptr<const void>(
      std::make_shared<MisColorSweepKernelConfig>(
          MisColorSweepKernelConfig{num_colors}));
  return kernel;
}

}  // namespace

MisColorSweep::MisColorSweep(std::int64_t num_colors)
    : num_colors_(std::max<std::int64_t>(num_colors, 1)),
      kernel_(make_mis_sweep_kernel(num_colors_)) {}

std::unique_ptr<Process> MisColorSweep::spawn(const NodeInit&) const {
  return std::make_unique<MisColorSweepProcess>(num_colors_);
}

std::shared_ptr<const StepKernel> MisColorSweep::kernel() const {
  return kernel_;
}

std::string MisColorSweep::name() const {
  return "mis-sweep(" + std::to_string(num_colors_) + ")";
}

std::unique_ptr<Algorithm> make_coloring_mis_algorithm(std::int64_t delta_guess,
                                                       std::int64_t m_guess) {
  auto linial = std::make_shared<LinialColoring>(
      delta_guess, std::max<std::int64_t>(m_guess, 1));
  const std::int64_t k_final = linial->schedule().final_space;
  auto reduce = std::make_shared<ColorReduce>(k_final, /*target=*/0);
  auto sweep = std::make_shared<MisColorSweep>(delta_guess + 1);
  std::vector<ChainStage> stages;
  stages.push_back({linial, static_cast<std::int64_t>(
                                linial->schedule().length()) +
                                1});
  stages.push_back({reduce, reduce->schedule_rounds()});
  stages.push_back({sweep, sweep->schedule_rounds()});
  return std::make_unique<ChainAlgorithm>(
      "mis-via-coloring(D=" + std::to_string(delta_guess) + ")",
      std::move(stages));
}

namespace {

class ColoringMis final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "mis-via-coloring"; }
  ParamSet gamma() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  ParamSet lambda() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return make_coloring_mis_algorithm(guesses[0], guesses[1]);
  }

 private:
  // Chain length <= (|schedule|+1) + final_space + (Delta~+3)
  //             <= linial_final_space_bound(D) + D + 45 + log*(m).
  AdditiveBound bound_{
      {BoundComponent{"O(D^2)",
                      [](std::int64_t d) {
                        return static_cast<double>(
                            linial_final_space_bound(d) + d + 8);
                      }},
       BoundComponent{"log*(m)+43", [](std::int64_t m) {
                        return static_cast<double>(
                            log_star(static_cast<std::uint64_t>(
                                std::max<std::int64_t>(m, 2))) +
                            43);
                      }}}};
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_coloring_mis() {
  return std::make_unique<ColoringMis>();
}

}  // namespace unilocal
