#include "src/algo/hpartition.h"

#include <algorithm>
#include <cmath>

#include "src/runtime/kernel.h"

namespace unilocal {

namespace {

class HPartitionProcess final : public Process {
 public:
  HPartitionProcess(std::int64_t threshold, std::int64_t phases)
      : threshold_(threshold), phases_(phases) {}

  void step(Context& ctx) override {
    if (ctx.round() == 0) {
      residual_degree_ = ctx.degree();
      // Peel in lockstep: phase p happens in round p (1-based).
      return;
    }
    // Ingest departure notices from the previous phase.
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      if (ctx.received(j) != nullptr) --residual_degree_;
    }
    if (layer_ == 0 && residual_degree_ <= threshold_) {
      layer_ = ctx.round();  // 1-based phase index
      ctx.broadcast({1});    // departure notice
    }
    if (ctx.round() >= phases_) ctx.finish(layer_);
  }

 private:
  std::int64_t threshold_;
  std::int64_t phases_;
  std::int64_t residual_degree_ = 0;
  std::int64_t layer_ = 0;
};

// --- flat-kernel lowering (mirrors HPartitionProcess::step bit-for-bit) -----

struct HPartitionKernelConfig {
  std::int64_t threshold;
  std::int64_t phases;
};

struct HPartitionKernelState {
  std::int64_t residual_degree;
  std::int64_t layer;
};

void hpartition_kernel_round0(KernelCtx& ctx) {
  auto& st = ctx.state_as<HPartitionKernelState>();
  st.residual_degree = ctx.degree;
  // Peel in lockstep: phase p happens in round p (1-based); nothing to send.
}

void hpartition_kernel_peel(KernelCtx& ctx) {
  const auto* cfg = static_cast<const HPartitionKernelConfig*>(ctx.config);
  auto& st = ctx.state_as<HPartitionKernelState>();
  // Ingest departure notices from the previous phase.
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    ctx.recv(j, &present);
    if (present) --st.residual_degree;
  }
  if (st.layer == 0 && st.residual_degree <= cfg->threshold) {
    st.layer = ctx.round;   // 1-based phase index
    ctx.broadcast({1});     // departure notice
  }
  if (ctx.round >= cfg->phases) ctx.finish(st.layer);
}

void hpartition_batch_round0(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    hpartition_kernel_round0(ctx);
    b.latch(i, ctx);
  }
}

void hpartition_batch_peel(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    hpartition_kernel_peel(ctx);
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_hpartition_kernel(
    std::int64_t threshold, std::int64_t phases) {
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "hpartition";
  kernel->state_size = sizeof(HPartitionKernelState);
  kernel->state_align = alignof(HPartitionKernelState);
  kernel->phases = {
      {"round0", hpartition_kernel_round0, hpartition_batch_round0},
      {"peel", hpartition_kernel_peel, hpartition_batch_peel}};
  kernel->select_fn = [](std::int64_t round, const std::byte*,
                         const void*) -> std::uint16_t {
    return round == 0 ? 0 : 1;
  };
  kernel->config = std::shared_ptr<const void>(
      std::make_shared<HPartitionKernelConfig>(
          HPartitionKernelConfig{threshold, phases}));
  return kernel;
}

}  // namespace

std::int64_t HPartition::phases_for(std::int64_t n_guess) {
  const double n = static_cast<double>(std::max<std::int64_t>(n_guess, 2));
  return static_cast<std::int64_t>(
             std::ceil(std::log(n) / std::log(1.5))) +
         1;
}

HPartition::HPartition(std::int64_t arboricity_guess, std::int64_t n_guess)
    : threshold_(3 * std::max<std::int64_t>(arboricity_guess, 1)),
      phases_(phases_for(n_guess)),
      kernel_(make_hpartition_kernel(threshold_, phases_)) {}

std::unique_ptr<Process> HPartition::spawn(const NodeInit&) const {
  return std::make_unique<HPartitionProcess>(threshold_, phases_);
}

std::shared_ptr<const StepKernel> HPartition::kernel() const {
  return kernel_;
}

std::string HPartition::name() const {
  return "h-partition(3a=" + std::to_string(threshold_) + ")";
}

}  // namespace unilocal
