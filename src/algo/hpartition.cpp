#include "src/algo/hpartition.h"

#include <algorithm>
#include <cmath>

namespace unilocal {

namespace {

class HPartitionProcess final : public Process {
 public:
  HPartitionProcess(std::int64_t threshold, std::int64_t phases)
      : threshold_(threshold), phases_(phases) {}

  void step(Context& ctx) override {
    if (ctx.round() == 0) {
      residual_degree_ = ctx.degree();
      // Peel in lockstep: phase p happens in round p (1-based).
      return;
    }
    // Ingest departure notices from the previous phase.
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      if (ctx.received(j) != nullptr) --residual_degree_;
    }
    if (layer_ == 0 && residual_degree_ <= threshold_) {
      layer_ = ctx.round();  // 1-based phase index
      ctx.broadcast({1});    // departure notice
    }
    if (ctx.round() >= phases_) ctx.finish(layer_);
  }

 private:
  std::int64_t threshold_;
  std::int64_t phases_;
  std::int64_t residual_degree_ = 0;
  std::int64_t layer_ = 0;
};

}  // namespace

std::int64_t HPartition::phases_for(std::int64_t n_guess) {
  const double n = static_cast<double>(std::max<std::int64_t>(n_guess, 2));
  return static_cast<std::int64_t>(
             std::ceil(std::log(n) / std::log(1.5))) +
         1;
}

HPartition::HPartition(std::int64_t arboricity_guess, std::int64_t n_guess)
    : threshold_(3 * std::max<std::int64_t>(arboricity_guess, 1)),
      phases_(phases_for(n_guess)) {}

std::unique_ptr<Process> HPartition::spawn(const NodeInit&) const {
  return std::make_unique<HPartitionProcess>(threshold_, phases_);
}

std::string HPartition::name() const {
  return "h-partition(3a=" + std::to_string(threshold_) + ")";
}

}  // namespace unilocal
