// lambda*(Delta+1)-coloring (paper Table 1 row 5, Corollary 1(iii)):
// Linial's shrink followed by a reduction of the palette to
// g(Delta~) = lambda*(Delta~+1) colors. For lambda = Delta the pipeline stops
// at Linial's O(Delta^2) fixed point (the "O(Delta^2)-coloring in O(log* n)"
// special case). Gamma = Lambda = {Delta, m}.
//
// g(x) = lambda*(x+1) is moderately-fast for any constant lambda >= 1, which
// is what the Theorem 5 transformer requires of the color budget.
#pragma once

#include <memory>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

std::unique_ptr<Algorithm> make_lambda_coloring_algorithm(
    std::int64_t lambda, std::int64_t delta_guess, std::int64_t m_guess);

/// Colors used: at most lambda*(delta_guess+1).
std::unique_ptr<NonUniformAlgorithm> make_lambda_coloring(std::int64_t lambda);

}  // namespace unilocal
