// Linial's iterated color reduction (Linial'92), the O(log* n)-round
// engine behind the paper's Table 1 coloring rows.
//
// One step: with the current colors drawn from [0, k), all nodes share a
// prime p and degree d with p >= d*Delta~ + 1 and p^(d+1) >= k. A color c
// is read as a polynomial f_c over F_p (its base-p digits). Two distinct
// colors agree on at most d points, so a node with at most Delta~ conflicting
// neighbours can pick an evaluation point a with f_c(a) unique among them;
// its new color is a*p + f_c(a) < p^2. Iterating shrinks the color space
// from m~ to O(Delta~^2) within O(log* m~) steps (the schedule below is
// provably <= 40 steps for any 63-bit space; see linial_schedule()).
//
// The step parameters are a deterministic function of the guesses
// (Delta~, m~), so all nodes follow the same schedule without coordination —
// this is exactly where the algorithm is non-uniform.
#pragma once

#include <memory>
#include <span>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

struct LinialStep {
  std::int64_t prime = 0;
  std::int64_t degree = 0;      // polynomial degree bound d
  std::int64_t in_space = 0;    // colors enter in [0, in_space)
  std::int64_t out_space = 0;   // colors leave in [0, prime^2)
};

struct LinialSchedule {
  std::vector<LinialStep> steps;
  std::int64_t initial_space = 0;
  std::int64_t final_space = 0;

  std::size_t length() const noexcept { return steps.size(); }
};

/// The deterministic schedule for guesses (delta_guess, initial color space
/// size). Stops at the first step that would not shrink the space.
LinialSchedule linial_schedule(std::int64_t delta_guess,
                               std::int64_t initial_space);

/// Upper bound on the final color-space size for a given Delta~ (DESIGN.md:
/// at most next_prime(2*Delta~+1)^2 <= 16*(Delta~+1)^2).
std::int64_t linial_final_space_bound(std::int64_t delta_guess);

/// Executes one reduction step at a node: own color plus the current
/// neighbour colors (entries < 0 are ignored) -> new color in
/// [0, step.prime^2). Total per-node work O(p * deg * d).
std::int64_t linial_step_apply(const LinialStep& step, std::int64_t color,
                               std::span<const std::int64_t> neighbor_colors);

/// Standalone LOCAL algorithm: runs the schedule and finishes with a color
/// in [1, final_space] after length()+1 rounds. Initial color is input[0]
/// when the node input is non-empty (paper Section 5: initial colors may
/// replace identities), otherwise the identity.
class LinialColoring final : public Algorithm {
 public:
  LinialColoring(std::int64_t delta_guess, std::int64_t space_guess);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::string name() const override;
  const LinialSchedule& schedule() const noexcept { return schedule_; }
  /// Flat-kernel lowering ("linial" in the kernel registry); covers the
  /// degenerate empty-schedule case too.
  std::shared_ptr<const StepKernel> kernel() const override;

 private:
  LinialSchedule schedule_;
  std::int64_t delta_guess_;
  std::shared_ptr<const StepKernel> kernel_;
};

/// Linial wrapped as the non-uniform O(Delta^2)-ish coloring algorithm:
/// Gamma = Lambda = {Delta, m}, f additive = (log* m~ + 34) + small(Delta~).
std::unique_ptr<NonUniformAlgorithm> make_linial_coloring();

}  // namespace unilocal
