#include "src/algo/dplus1.h"

#include <algorithm>

#include "src/algo/color_reduce.h"
#include "src/algo/linial.h"
#include "src/runtime/chain.h"
#include "src/util/math.h"

namespace unilocal {

std::unique_ptr<Algorithm> make_deg_plus_one_algorithm(std::int64_t delta_guess,
                                                       std::int64_t m_guess) {
  auto linial = std::make_shared<LinialColoring>(
      delta_guess, std::max<std::int64_t>(m_guess, 1));
  const std::int64_t k_final = linial->schedule().final_space;
  auto reduce = std::make_shared<ColorReduce>(k_final, /*target=*/0);
  std::vector<ChainStage> stages;
  stages.push_back({linial, static_cast<std::int64_t>(
                                linial->schedule().length()) +
                                1});
  stages.push_back({reduce, reduce->schedule_rounds()});
  return std::make_unique<ChainAlgorithm>(
      "deg+1-coloring(D=" + std::to_string(delta_guess) + ")",
      std::move(stages));
}

namespace {

class DegPlusOne final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "deg+1-coloring"; }
  ParamSet gamma() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  ParamSet lambda() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return make_deg_plus_one_algorithm(guesses[0], guesses[1]);
  }

 private:
  AdditiveBound bound_{
      {BoundComponent{"O(D^2)",
                      [](std::int64_t d) {
                        return static_cast<double>(
                            linial_final_space_bound(d) + 4);
                      }},
       BoundComponent{"log*(m)+43", [](std::int64_t m) {
                        return static_cast<double>(
                            log_star(static_cast<std::uint64_t>(
                                std::max<std::int64_t>(m, 2))) +
                            43);
                      }}}};
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_deg_plus_one_coloring() {
  return std::make_unique<DegPlusOne>();
}

}  // namespace unilocal
