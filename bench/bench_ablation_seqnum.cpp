// A1 — Ablation: sequence-number functions (Observation 4.1). The same
// inner algorithm is declared once with its natural ADDITIVE bound
// (s_f = 1: one guess vector per iteration) and once with an artificial
// PRODUCT-form bound (s_f(i) = ceil(log i)+1 guess vectors per iteration).
// Theorem 1 predicts the product declaration costs an extra s_f(f*) factor
// — this bench measures that factor directly.
#include <cmath>

#include "bench/bench_support.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/linial.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/prune/ruling_set_prune.h"
#include "src/util/math.h"

namespace unilocal {
namespace {

/// The coloring-MIS pipeline re-declared with a product-form bound
/// f(D, m) = (O(D^2)) * (log* m + 43) — a valid (much looser) upper bound,
/// exercising the s_f = log machinery.
class ProductDeclaredMis final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "mis-via-coloring[product-f]"; }
  ParamSet gamma() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  ParamSet lambda() const override { return gamma(); }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return make_coloring_mis_algorithm(guesses[0], guesses[1]);
  }

 private:
  ProductBound bound_{
      BoundComponent{"O(D^2)",
                     [](std::int64_t d) {
                       return static_cast<double>(
                           linial_final_space_bound(d) + d + 8);
                     }},
      BoundComponent{"log*(m)+43", [](std::int64_t m) {
                       return static_cast<double>(
                           log_star(static_cast<std::uint64_t>(
                               std::max<std::int64_t>(m, 2))) +
                           43);
                     }}};
};

void run() {
  bench::header("A1: ablation — additive (s_f=1) vs product (s_f=log) bound",
                "Observation 4.1 / Theorem 1 overhead factor");
  const auto additive = make_coloring_mis();
  const ProductDeclaredMis product;
  const RulingSetPruning pruning(1);
  TextTable table({"n", "Delta", "additive ledger", "product ledger",
                   "measured factor", "s_f(f*) prediction"});
  for (NodeId n : {256, 1024}) {
    for (NodeId delta : {4, 8}) {
      Rng rng(static_cast<std::uint64_t>(n) + delta);
      Instance instance =
          make_instance(random_bounded_degree(n, delta, 0.9, rng),
                        IdentityScheme::kRandomSparse, n);
      const UniformRunResult a =
          run_uniform_transformer(instance, *additive, pruning);
      const UniformRunResult p =
          run_uniform_transformer(instance, product, pruning);
      const double f_star = bound_at_correct_params(product, instance);
      table.add_row(
          {TextTable::fmt(std::int64_t{n}),
           TextTable::fmt(std::int64_t{max_degree(instance.graph)}),
           TextTable::fmt(a.total_rounds), TextTable::fmt(p.total_rounds),
           bench::ratio(p.total_rounds, a.total_rounds),
           TextTable::fmt(product.bound().sequence_number(
               static_cast<std::int64_t>(f_star)))});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: product declaration costs extra (more sub-\n"
      "iterations and a looser f), bounded by the s_f(f*) prediction\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
