// E4 — Table 1 row 5: "Det. lambda(Delta+1)-coloring, parameters {n, Delta},
// time O(Delta/lambda + log* n)" and Corollary 1(iii), via the Theorem 5
// coloring transformer (SLC + degree layering). Our substitute's time is
// O(Delta^2 + log* m); the quantity under test is the transformer overhead
// and the O(g(Delta)) color budget, both claimed O(1)-factor by the paper.
#include "bench/bench_support.h"
#include "src/algo/lambda_coloring.h"
#include "src/core/coloring_transform.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/problems/coloring.h"

namespace unilocal {
namespace {

void run() {
  bench::header("E4: uniform lambda(Delta+1)-coloring via Theorem 5",
                "Table 1 row 5 (Barenboim-Elkin'09 / Kuhn'09) + Cor. 1(iii)");
  TextTable table({"lambda", "n", "Delta", "nonuniform", "uniform(T5)",
                   "colors", "budget 2g(2D+1)", "valid"});
  for (std::int64_t lambda : {1, 2, 4, 8}) {
    const auto gdelta = make_lambda_gdelta_coloring(lambda);
    const auto nonuniform = make_lambda_coloring(lambda);
    for (NodeId n : {512, 2048}) {
      Rng rng(static_cast<std::uint64_t>(n) + lambda);
      Instance instance =
          make_instance(random_bounded_degree(n, 8, 0.9, rng),
                        IdentityScheme::kRandomSparse, n + lambda);
      const std::int64_t delta = max_degree(instance.graph);
      const std::int64_t base = bench::baseline_rounds(instance, *nonuniform);
      const ColoringTransformResult uniform =
          run_uniform_coloring_transform(instance, *gdelta);
      const bool valid = uniform.solved &&
                         is_proper_coloring(instance.graph, uniform.colors);
      table.add_row({TextTable::fmt(lambda), TextTable::fmt(std::int64_t{n}),
                     TextTable::fmt(delta), TextTable::fmt(base),
                     TextTable::fmt(uniform.total_rounds),
                     TextTable::fmt(uniform.max_color_used),
                     TextTable::fmt(2 * gdelta->g(2 * delta + 1)),
                     valid ? "yes" : "NO"});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: colors <= 2 g(2 Delta+1) = O(lambda Delta); rounds\n"
      "ratio vs the non-uniform baseline bounded by a constant per lambda;\n"
      "larger lambda shortens the palette-reduction tail in both columns\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
