// E8 — Table 1 row 10: the uniform randomized MIS baseline (Luby'86 /
// Alon-Babai-Itai'86, expected O(log n)). Verifies the log n round shape
// the paper's last row cites, across families and seeds.
#include <numeric>

#include "bench/bench_support.h"
#include "src/algo/luby.h"
#include "src/graph/generators.h"
#include "src/problems/mis.h"
#include "src/util/math.h"

namespace unilocal {
namespace {

void run() {
  bench::header("E8: uniform randomized MIS baseline (Luby)",
                "Table 1 row 10 (Luby'86 / Alon-Babai-Itai'86)");
  const LubyMis algorithm;
  TextTable table({"family", "n", "E[rounds]", "max", "2*log2(n)", "valid"});
  for (NodeId n : {256, 1024, 4096, 16384}) {
    Rng rng(n);
    const std::vector<std::pair<std::string, Graph>> families = {
        {"gnp-avg8", gnp(n, 8.0 / n, rng)},
        {"path", path_graph(n)},
    };
    for (const auto& [family, graph] : families) {
      Instance instance =
          make_instance(graph, IdentityScheme::kRandomSparse, n + 9);
      std::vector<std::int64_t> rounds;
      bool all_valid = true;
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        RunOptions options;
        options.seed = seed;
        const RunResult result = run_local(instance, algorithm, options);
        all_valid = all_valid &&
                    is_maximal_independent_set(instance.graph, result.outputs);
        rounds.push_back(result.rounds_used);
      }
      const double mean = std::accumulate(rounds.begin(), rounds.end(), 0.0) /
                          static_cast<double>(rounds.size());
      table.add_row({family, TextTable::fmt(std::int64_t{n}),
                     TextTable::fmt(mean, 1),
                     TextTable::fmt(*std::max_element(rounds.begin(),
                                                      rounds.end())),
                     TextTable::fmt(std::int64_t{2 * clog2(
                         static_cast<std::uint64_t>(n))}),
                     all_valid ? "yes" : "NO"});
    }
  }
  table.print();
  std::printf("\nexpected shape: E[rounds] grows ~log n, valid on all seeds\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
