// E1 — Table 1 row 1: "Det. MIS and (Delta+1)-coloring, parameters n, Delta,
// time O(Delta + log* n)" and its uniform counterpart from Corollary 1(i).
//
// Substrate (DESIGN.md): the O(Delta~^2 + log* m~) Linial pipeline stands in
// for the linear-in-Delta originals. The experiment sweeps n at fixed Delta
// (the log*-dominated regime) and Delta at fixed n (the Delta-dominated
// regime), comparing the non-uniform baseline (correct guesses) with the
// Theorem 1 uniform transform. The paper's claim: the ratio is a constant,
// independent of n and Delta.
#include "bench/bench_support.h"
#include "src/algo/mis_from_coloring.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/problems/mis.h"
#include "src/prune/ruling_set_prune.h"

namespace unilocal {
namespace {

void run() {
  bench::header(
      "E1: deterministic MIS / (deg+1)-coloring, parameters {Delta, m}",
      "Table 1 row 1 (Barenboim-Elkin'09 / Kuhn'09) + Corollary 1(i)");
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  const MisProblem problem;

  std::printf("\n-- sweep n at fixed Delta (log*-dominated regime) --\n");
  TextTable by_n({"family", "n", "Delta", "nonuniform", "uniform", "ratio",
                  "iters", "valid"});
  for (NodeId delta : {4, 8}) {
    for (NodeId n : {256, 1024, 4096}) {
      Rng rng(static_cast<std::uint64_t>(n) * 31 + delta);
      Instance instance =
          make_instance(random_bounded_degree(n, delta, 0.9, rng),
                        IdentityScheme::kRandomSparse, n + delta);
      const std::int64_t base = bench::baseline_rounds(instance, *algorithm);
      const UniformRunResult uniform =
          run_uniform_transformer(instance, *algorithm, pruning);
      by_n.add_row({"bounded-deg", TextTable::fmt(std::int64_t{n}),
                    TextTable::fmt(std::int64_t{max_degree(instance.graph)}),
                    TextTable::fmt(base), TextTable::fmt(uniform.total_rounds),
                    bench::ratio(uniform.total_rounds, base),
                    TextTable::fmt(std::int64_t{uniform.iterations_used}),
                    uniform.solved && problem.check(instance, uniform.outputs)
                        ? "yes"
                        : "NO"});
    }
  }
  by_n.print();

  std::printf("\n-- sweep Delta at fixed n = 1024 (Delta-dominated) --\n");
  TextTable by_delta({"Delta", "nonuniform", "uniform", "ratio", "valid"});
  for (NodeId delta : {2, 4, 8, 16}) {
    Rng rng(777 + delta);
    Instance instance =
        make_instance(random_bounded_degree(1024, delta, 0.9, rng),
                      IdentityScheme::kRandomSparse, delta);
    const std::int64_t base = bench::baseline_rounds(instance, *algorithm);
    const UniformRunResult uniform =
        run_uniform_transformer(instance, *algorithm, pruning);
    by_delta.add_row(
        {TextTable::fmt(std::int64_t{max_degree(instance.graph)}),
         TextTable::fmt(base), TextTable::fmt(uniform.total_rounds),
         bench::ratio(uniform.total_rounds, base),
         uniform.solved && problem.check(instance, uniform.outputs) ? "yes"
                                                                    : "NO"});
  }
  by_delta.print();
  std::printf(
      "\nexpected shape: ratio bounded by a constant across both sweeps\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
