// Shared helpers for the Table 1 / Figure 1 reproduction benches.
//
// Every bench prints (a) the paper row it regenerates, (b) a table of
// measured LOCAL rounds for the non-uniform baseline (run with correct
// guesses) vs the uniform algorithm produced by the transformer, and (c)
// the overhead ratio — the quantity the paper claims is O(1).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/nonuniform.h"
#include "src/runtime/runner.h"
#include "src/util/table.h"

namespace unilocal {
namespace bench {

inline void header(const std::string& title, const std::string& paper_row) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper artefact: %s\n", paper_row.c_str());
  std::printf("================================================================\n");
}

/// Rounds of the non-uniform baseline run with the correct guesses
/// Gamma*(instance) — the paper's reference configuration.
inline std::int64_t baseline_rounds(const Instance& instance,
                                    const NonUniformAlgorithm& algorithm,
                                    std::uint64_t seed = 1) {
  const auto runnable = instantiate_with_correct_guesses(algorithm, instance);
  RunOptions options;
  options.seed = seed;
  return run_local(instance, *runnable, options).rounds_used;
}

inline std::string ratio(std::int64_t uniform, std::int64_t baseline) {
  if (baseline <= 0) return "-";
  return TextTable::fmt(static_cast<double>(uniform) /
                        static_cast<double>(baseline));
}

}  // namespace bench
}  // namespace unilocal
