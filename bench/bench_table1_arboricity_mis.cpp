// E3 — Table 1 rows 3-4: MIS on bounded-arboricity graphs (Barenboim-
// Elkin'10), time o(log n) / O(log n / log log n), parameters {a, n};
// Corollary 4: the uniform version needs neither. Our substitute's bound is
// O(a^2) + O(log n) + O(log* m); on the bounded-arboricity families below
// the O(log n) peeling dominates, reproducing the rows' log-n shape.
//
// The Theorem 3 wrapper eliminates a (via 2^a <= n on these families) and m
// (via m = n under permuted identities), leaving Lambda = {n} — exactly the
// situation the paper describes for [6].
#include <cmath>

#include "bench/bench_support.h"
#include "src/algo/arb_mis.h"
#include "src/core/transformer.h"
#include "src/core/weak_domination.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/problems/mis.h"
#include "src/prune/ruling_set_prune.h"

namespace unilocal {
namespace {

void run() {
  bench::header("E3: deterministic MIS on bounded-arboricity families",
                "Table 1 rows 3-4 (Barenboim-Elkin'10) + Corollary 4");
  auto inner = std::shared_ptr<const NonUniformAlgorithm>(make_arb_mis());
  const auto uniform_algorithm = apply_weak_domination(
      inner,
      {Domination{Param::kArboricity, Param::kNumNodes,
                  [](std::int64_t a) { return std::ldexp(1.0, int(a)); },
                  "2^a<=n"},
       Domination{Param::kMaxIdentity, Param::kNumNodes,
                  [](std::int64_t m) { return double(m); }, "m<=n"}});
  const RulingSetPruning pruning(1);
  const MisProblem problem;
  TextTable table({"family", "n", "a(proxy)", "nonuniform(a,n,m)",
                   "uniform(n-only)", "ratio", "valid"});
  for (NodeId n : {256, 1024, 4096}) {
    Rng rng(n);
    const std::vector<std::pair<std::string, Graph>> families = {
        {"tree", random_tree(n, rng)},
        {"grid", grid_graph(static_cast<NodeId>(std::sqrt(n)),
                            static_cast<NodeId>(std::sqrt(n)))},
        {"layered-forest-2", random_layered_forest(n, 2, rng)},
    };
    for (const auto& [family, graph] : families) {
      Instance instance =
          make_instance(graph, IdentityScheme::kRandomPermuted, n + 1);
      const std::int64_t base = bench::baseline_rounds(instance, *inner);
      const UniformRunResult uniform =
          run_uniform_transformer(instance, *uniform_algorithm, pruning);
      table.add_row(
          {family, TextTable::fmt(std::int64_t{instance.num_nodes()}),
           TextTable::fmt(eval_param(Param::kArboricity, instance)),
           TextTable::fmt(base), TextTable::fmt(uniform.total_rounds),
           bench::ratio(uniform.total_rounds, base),
           uniform.solved && problem.check(instance, uniform.outputs)
               ? "yes"
               : "NO"});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: both columns grow ~log n (peeling-dominated);\n"
      "ratio bounded by a constant; the uniform column used no knowledge\n"
      "of a, n or m\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
