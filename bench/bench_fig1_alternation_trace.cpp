// F1 — Figure 1: the schematic of an alternating algorithm
// (G1,x1) --A1--> (G1,x1,y1) --P--> (G2,x2) --A2--> ...
// Regenerated as a concrete execution trace of the Theorem 1 transformer:
// one row per (iteration, sub-iteration) showing the guess vector, the
// prescribed budget c*2^i, the rounds actually used, and the graph
// shrinking under the pruning algorithm until V(G_k) is empty.
#include "bench/bench_support.h"
#include "src/algo/mis_from_coloring.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/prune/ruling_set_prune.h"

namespace unilocal {
namespace {

void run() {
  bench::header("F1: alternating-algorithm execution trace",
                "Figure 1 (Section 3.3) as a concrete run");
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  Rng rng(5);
  Instance instance = make_instance(gnp(600, 0.02, rng),
                                    IdentityScheme::kRandomSparse, 11);
  const UniformRunResult result =
      run_uniform_transformer(instance, *algorithm, pruning);
  TextTable table({"iter i", "sub j", "guesses (Delta~, m~)", "budget c*2^i",
                   "rounds used", "|V(G)| before", "pruned", "left"});
  for (const auto& step : result.trace) {
    std::string guesses;
    for (std::size_t k = 0; k < step.guesses.size(); ++k) {
      if (k > 0) guesses += ", ";
      guesses += std::to_string(step.guesses[k]);
    }
    table.add_row({TextTable::fmt(std::int64_t{step.iteration}),
                   TextTable::fmt(std::int64_t{step.sub_iteration}),
                   "(" + guesses + ")", TextTable::fmt(step.budget),
                   TextTable::fmt(step.rounds_used),
                   TextTable::fmt(std::int64_t{step.nodes_before}),
                   TextTable::fmt(std::int64_t{step.nodes_pruned}),
                   TextTable::fmt(std::int64_t{step.nodes_before -
                                               step.nodes_pruned})});
  }
  table.print();
  std::printf("\ntotal ledger: %lld rounds across %d iterations, solved=%s\n",
              static_cast<long long>(result.total_rounds),
              result.iterations_used, result.solved ? "yes" : "no");
  std::printf(
      "expected shape: guesses and budgets double per iteration; the final\n"
      "sub-iteration (good guesses) prunes every remaining node — the\n"
      "solution-detection property of Figure 1's pruning boxes\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
