// A2 — Ablation: the Theorem 4 fastest-of-k combinator (Corollary 1(i)).
// Families engineered so that different component algorithms win: greedy
// (bound in n) wins on cliques, the coloring pipeline (bound in Delta, m)
// wins on adversarial paths, the arboricity pipeline wins on large-Delta
// trees. The combinator must track the winner within a constant factor
// without being told the family.
#include <cmath>

#include "bench/bench_support.h"
#include "src/algo/arb_mis.h"
#include "src/algo/greedy_mis.h"
#include "src/algo/mis_from_coloring.h"
#include "src/core/fastest.h"
#include "src/core/weak_domination.h"
#include "src/graph/generators.h"
#include "src/problems/mis.h"
#include "src/prune/ruling_set_prune.h"

namespace unilocal {
namespace {

void run() {
  bench::header("A2: ablation — Theorem 4 min-combinator",
                "Corollary 1(i): min{g(n), h(Delta,n), f(a,n)}");
  auto pruning = std::make_shared<RulingSetPruning>(1);
  const auto global = make_transformed_executable(
      std::shared_ptr<const NonUniformAlgorithm>(make_global_mis()), pruning);
  const auto degree = make_transformed_executable(
      std::shared_ptr<const NonUniformAlgorithm>(make_coloring_mis()),
      pruning);
  auto arb_inner = std::shared_ptr<const NonUniformAlgorithm>(make_arb_mis());
  const auto arb = make_transformed_executable(
      std::shared_ptr<const NonUniformAlgorithm>(apply_weak_domination(
          arb_inner,
          {Domination{Param::kArboricity, Param::kNumNodes,
                      [](std::int64_t a) { return std::ldexp(1.0, int(a)); },
                      "2^a<=n"},
           Domination{Param::kMaxIdentity, Param::kNumNodes,
                      [](std::int64_t m) { return double(m); }, "m<=n"}})),
      pruning);
  const std::vector<const UniformExecutable*> executables{
      global.get(), degree.get(), arb.get()};

  Rng rng(3);
  const std::vector<std::pair<std::string, Graph>> families = {
      {"clique-64", complete_graph(64)},
      {"path-sorted-1024", path_graph(1024)},
      {"star-512", complete_bipartite(1, 512)},
      {"tree-1024", random_tree(1024, rng)},
      {"gnp-1024", gnp(1024, 8.0 / 1024, rng)},
  };
  TextTable table({"family", "global", "degree", "arboricity", "combined",
                   "combined/min", "valid"});
  const std::int64_t huge = std::int64_t{1} << 30;
  for (const auto& [family, graph] : families) {
    const auto scheme = family == "path-sorted-1024"
                            ? IdentityScheme::kSequential
                            : IdentityScheme::kRandomPermuted;
    Instance instance = make_instance(graph, scheme, 13);
    const std::int64_t rg = global->run(instance, huge, 1).rounds;
    const std::int64_t rd = degree->run(instance, huge, 1).rounds;
    const std::int64_t ra = arb->run(instance, huge, 1).rounds;
    const UniformRunResult combined =
        run_fastest(instance, executables, *pruning);
    const std::int64_t best = std::min({rg, rd, ra});
    table.add_row(
        {family, TextTable::fmt(rg), TextTable::fmt(rd), TextTable::fmt(ra),
         TextTable::fmt(combined.total_rounds),
         bench::ratio(combined.total_rounds, best),
         combined.solved && is_maximal_independent_set(instance.graph,
                                                       combined.outputs)
             ? "yes"
             : "NO"});
  }
  table.print();
  std::printf(
      "\nexpected shape: the winner differs per family; combined stays\n"
      "within a constant factor of the per-family minimum\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
