// A3 — Ablation: Observation 2.1 and the alpha-synchronizer remark. Runs
// Luby MIS under adversarial staggered wake-up patterns with the
// alpha-synchronizer emulation and checks (a) outputs stay valid, (b) every
// node's termination time (the paper's non-simultaneous definition) is
// bounded by the simultaneous running time, and (c) the composition A1;A2
// finishes within t1 + t2.
#include <algorithm>

#include "bench/bench_support.h"
#include "src/algo/luby.h"
#include "src/algo/greedy_mis.h"
#include "src/graph/generators.h"
#include "src/problems/mis.h"

namespace unilocal {
namespace {

void run() {
  bench::header("A3: ablation — wake-up patterns and the alpha synchronizer",
                "Section 2 'Synchronicity and time complexity', Obs. 2.1");
  const LubyMis luby;
  TextTable table({"pattern", "n", "sim rounds t", "max termination time",
                   "bound ok", "valid"});
  for (NodeId n : {128, 512}) {
    Rng rng(n);
    Instance instance = make_instance(gnp(n, 6.0 / n, rng),
                                      IdentityScheme::kRandomSparse, n);
    RunOptions simultaneous;
    simultaneous.seed = 3;
    const RunResult sim = run_local(instance, luby, simultaneous);
    const std::vector<std::pair<std::string, std::int64_t>> patterns = {
        {"staggered-mod7", 7}, {"staggered-mod31", 31}};
    for (const auto& [name, modulus] : patterns) {
      RunOptions options;
      options.seed = 3;  // same randomness as the simultaneous run
      options.wake_rounds.assign(static_cast<std::size_t>(n), 0);
      for (NodeId v = 0; v < n; ++v)
        options.wake_rounds[static_cast<std::size_t>(v)] =
            (v * 13) % modulus;
      const RunResult result = run_local(instance, luby, options);
      const auto times = termination_times(
          instance.graph, options.wake_rounds, result.global_finish_rounds);
      const std::int64_t worst =
          *std::max_element(times.begin(), times.end());
      table.add_row(
          {name, TextTable::fmt(std::int64_t{n}),
           TextTable::fmt(sim.rounds_used), TextTable::fmt(worst),
           worst <= result.rounds_used + 1 ? "yes" : "NO",
           result.all_finished &&
                   is_maximal_independent_set(instance.graph, result.outputs)
               ? "yes"
               : "NO"});
    }
  }
  table.print();

  std::printf("\n-- Observation 2.1: composed running time <= t1 + t2 --\n");
  TextTable comp({"n", "t1 (luby)", "t2 (greedy)", "composed end", "t1+t2"});
  for (NodeId n : {128, 512}) {
    Rng rng(n + 1);
    Instance instance = make_instance(gnp(n, 6.0 / n, rng),
                                      IdentityScheme::kRandomSparse, n);
    const LubyMis a1;
    const GreedyMis a2;
    const auto results = run_sequential(instance, {&a1, &a2});
    std::int64_t composed_end = 0;
    for (std::int64_t g : results[1].global_finish_rounds)
      composed_end = std::max(composed_end, g + 1);
    comp.add_row({TextTable::fmt(std::int64_t{n}),
                  TextTable::fmt(results[0].rounds_used),
                  TextTable::fmt(results[1].rounds_used),
                  TextTable::fmt(composed_end),
                  TextTable::fmt(results[0].rounds_used +
                                 results[1].rounds_used)});
  }
  comp.print();
  std::printf(
      "\nexpected shape: termination times <= simultaneous running time;\n"
      "composed end <= t1 + t2 (the sum rule the transformers rely on)\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
