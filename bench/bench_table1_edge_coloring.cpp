// E5 — Table 1 rows 6-7: deterministic O(Delta)- and O(Delta^(1+eps))-edge-
// coloring (Barenboim-Elkin'11), parameters {n, Delta}; Corollary 1(v).
// Route faithful to the paper: run the vertex-coloring black box on the
// LINE GRAPH through the Theorem 5 transformer. Delta(L(G)) <= 2 Delta(G)-2,
// so 2*g(2*Delta_L+1) edge colors = O(Delta) for g = lambda(x+1).
#include "bench/bench_support.h"
#include "src/core/coloring_transform.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/graph/transforms.h"
#include "src/problems/coloring.h"

namespace unilocal {
namespace {

void run() {
  bench::header("E5: uniform O(Delta)-edge-coloring via line graphs",
                "Table 1 rows 6-7 (Barenboim-Elkin'11) + Corollary 1(v)");
  const auto gdelta = make_lambda_gdelta_coloring(1);
  TextTable table({"n", "Delta(G)", "Delta(L)", "edges", "uniform rounds",
                   "edge colors", "2Delta-1 greedy ref", "valid"});
  for (NodeId n : {256, 1024}) {
    for (NodeId delta : {4, 8}) {
      Rng rng(static_cast<std::uint64_t>(n) * 7 + delta);
      Graph g = random_bounded_degree(n, delta, 0.9, rng);
      const LineGraph lg = line_graph(g);
      Instance line_instance =
          make_instance(lg.graph, IdentityScheme::kRandomSparse, n + delta);
      const ColoringTransformResult uniform =
          run_uniform_coloring_transform(line_instance, *gdelta);
      const bool valid =
          uniform.solved && is_proper_edge_coloring(g, uniform.colors);
      table.add_row({TextTable::fmt(std::int64_t{n}),
                     TextTable::fmt(std::int64_t{max_degree(g)}),
                     TextTable::fmt(std::int64_t{max_degree(lg.graph)}),
                     TextTable::fmt(std::int64_t{lg.graph.num_nodes()}),
                     TextTable::fmt(uniform.total_rounds),
                     TextTable::fmt(uniform.max_color_used),
                     TextTable::fmt(std::int64_t{2 * max_degree(g) - 1}),
                     valid ? "yes" : "NO"});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: edge colors O(Delta) (a constant factor above the\n"
      "2Delta-1 greedy reference), rounds independent of n at fixed Delta\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
