// E2 — Table 1 row 2: "Det. MIS, parameter n, time 2^O(sqrt(log n))"
// (Panconesi-Srinivasan). Substitute (DESIGN.md): greedy-by-identity MIS
// wrapped as A_{n} with declared bound f(n~) = 2n~+4. The transformer's
// behaviour — double the guess until it covers the true n — is identical to
// what it would be with the PS black box; only f's shape differs.
#include "bench/bench_support.h"
#include "src/algo/greedy_mis.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/problems/mis.h"
#include "src/prune/ruling_set_prune.h"

namespace unilocal {
namespace {

void run() {
  bench::header("E2: deterministic MIS with a bound in n only",
                "Table 1 row 2 (Panconesi-Srinivasan substitute)");
  const auto algorithm = make_global_mis();
  const RulingSetPruning pruning(1);
  const MisProblem problem;
  TextTable table({"family", "n", "nonuniform", "uniform", "ratio", "valid"});
  for (NodeId n : {128, 512, 2048}) {
    // Adversarial path (worst case for greedy) and G(n,p).
    Instance path = make_instance(path_graph(n), IdentityScheme::kSequential);
    Rng rng(n);
    Instance random =
        make_instance(gnp(n, 8.0 / n, rng), IdentityScheme::kRandomSparse, n);
    for (auto* entry : {&path, &random}) {
      const std::string family = entry == &path ? "path-sorted" : "gnp";
      const std::int64_t base = bench::baseline_rounds(*entry, *algorithm);
      const UniformRunResult uniform =
          run_uniform_transformer(*entry, *algorithm, pruning);
      table.add_row(
          {family, TextTable::fmt(std::int64_t{n}), TextTable::fmt(base),
           TextTable::fmt(uniform.total_rounds),
           bench::ratio(uniform.total_rounds, base),
           uniform.solved && problem.check(*entry, uniform.outputs) ? "yes"
                                                                    : "NO"});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: uniform/nonuniform ratio constant; on the sorted\n"
      "path both are Theta(n) (the substitute's f), on gnp both are small\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
