// E6 — Table 1 row 8: deterministic maximal matching (Hanckowiak et al.,
// O(log^4 n), parameter n or Delta) and Corollary 1(vi). Substitute
// (DESIGN.md): colored-proposal matching with f = O(Delta^2 + log* m),
// transformed by Theorem 1 with the paper's P_MM pruning algorithm.
#include "bench/bench_support.h"
#include "src/algo/edge_color_mm.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/problems/matching.h"
#include "src/prune/matching_prune.h"

namespace unilocal {
namespace {

void run() {
  bench::header("E6: uniform deterministic maximal matching",
                "Table 1 row 8 (Hanckowiak et al.) + Corollary 1(vi)");
  const auto algorithm = make_colored_matching();
  const MatchingPruning pruning;
  const MatchingProblem problem;
  TextTable table({"family", "n", "Delta", "nonuniform", "uniform", "ratio",
                   "valid"});
  for (NodeId n : {256, 1024, 4096}) {
    Rng rng(n);
    const std::vector<std::pair<std::string, Graph>> families = {
        {"bounded-deg-6", random_bounded_degree(n, 6, 0.9, rng)},
        {"bipartite-ish", gnp(n, 5.0 / n, rng)},
    };
    for (const auto& [family, graph] : families) {
      Instance instance =
          make_instance(graph, IdentityScheme::kRandomSparse, n + 3);
      const std::int64_t base = bench::baseline_rounds(instance, *algorithm);
      const UniformRunResult uniform =
          run_uniform_transformer(instance, *algorithm, pruning);
      table.add_row(
          {family, TextTable::fmt(std::int64_t{n}),
           TextTable::fmt(std::int64_t{max_degree(instance.graph)}),
           TextTable::fmt(base), TextTable::fmt(uniform.total_rounds),
           bench::ratio(uniform.total_rounds, base),
           uniform.solved && problem.check(instance, uniform.outputs)
               ? "yes"
               : "NO"});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: ratio constant across the n sweep; rounds driven\n"
      "by Delta, not n, in both columns (substitute bound)\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
