// Campaign throughput: a >= 64-cell (scenario x algorithm x seed) grid
// over >= 5 scenario families, run (a) as a sequential per-cell loop and
// (b) on the campaign layer at several worker counts. On multi-core hosts
// the campaign rows must beat the sequential loop; on any host the
// determinism row asserts that per-cell outputs are bit-identical for 1 vs
// N workers (the guarantee tests/campaign_test.cpp enforces in detail).
//
// BENCH_campaign.json records the numbers produced by
//   ./build/bench_campaign --benchmark_format=json
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "src/runtime/campaign.h"
#include "src/runtime/shard.h"

namespace unilocal {
namespace {

std::vector<CampaignCell> benchmark_grid() {
  ScenarioParams params;
  params.n = 600;
  // 6 families x 2 algorithms x 6 seeds = 72 cells. The algorithm keys go
  // through the registry's pattern resolution (the same path `sweep
  // --algos` uses), so the bench breaks loudly if the keys disappear.
  const std::vector<std::string> algorithms =
      default_algorithm_registry().resolve({"mis-uniform", "mis-fastest"});
  return make_grid({"gnp", "power-law", "geometric", "layered-forest",
                    "caterpillar", "bounded-degree"},
                   params, algorithms, 6);
}

/// The baseline the campaign has to beat: the same cells, one at a time,
/// through the same per-cell machinery (workers = 1 reuses one workspace
/// exactly like a sequential loop would).
void BM_CampaignSequentialLoop(benchmark::State& state) {
  const auto cells = benchmark_grid();
  int solved = 0;
  for (auto _ : state) {
    CampaignOptions options;
    options.workers = 1;
    const CampaignResult result = run_campaign(cells, options);
    solved = result.solved;
    benchmark::DoNotOptimize(result.cells.data());
  }
  state.counters["cells"] = static_cast<double>(cells.size());
  state.counters["solved"] = static_cast<double>(solved);
  state.counters["cells/sec"] = benchmark::Counter(
      static_cast<double>(cells.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignSequentialLoop)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_CampaignWorkers(benchmark::State& state) {
  const auto cells = benchmark_grid();
  const int workers = static_cast<int>(state.range(0));
  int solved = 0;
  for (auto _ : state) {
    CampaignOptions options;
    options.workers = workers;
    const CampaignResult result = run_campaign(cells, options);
    solved = result.solved;
    benchmark::DoNotOptimize(result.cells.data());
  }
  state.counters["cells"] = static_cast<double>(cells.size());
  state.counters["solved"] = static_cast<double>(solved);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["cells/sec"] = benchmark::Counter(
      static_cast<double>(cells.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignWorkers)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// Not a timing benchmark: asserts the 1-vs-N-worker bit-identical
/// guarantee on the full grid and aborts the bench run on any mismatch.
void BM_CampaignDeterminism1vsN(benchmark::State& state) {
  const auto cells = benchmark_grid();
  CampaignOptions options;
  options.keep_outputs = true;
  options.workers = 1;
  const CampaignResult sequential = run_campaign(cells, options);
  for (auto _ : state) {
    options.workers = static_cast<int>(state.range(0));
    const CampaignResult parallel = run_campaign(cells, options);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (parallel.cells[i].outputs != sequential.cells[i].outputs ||
          parallel.cells[i].output_hash != sequential.cells[i].output_hash) {
        std::fprintf(stderr,
                     "determinism violation in cell %zu (%s/%s)\n", i,
                     cells[i].scenario.c_str(), cells[i].algorithm.c_str());
        std::abort();
      }
    }
    benchmark::DoNotOptimize(parallel.cells.data());
  }
  state.counters["cells"] = static_cast<double>(cells.size());
}
BENCHMARK(BM_CampaignDeterminism1vsN)->Arg(4)->Unit(benchmark::kMillisecond);

/// The full pipeline zoo as one campaign: every registered algorithm on
/// the scenario families its Table 1 row is stated over (the grid
/// `unilocal_cli table1` runs).
void BM_Table1Campaign(benchmark::State& state) {
  ScenarioParams params;
  params.n = 128;
  const auto cells = make_table1_grid(params, 1);
  const int workers = static_cast<int>(state.range(0));
  int valid = 0;
  for (auto _ : state) {
    CampaignOptions options;
    options.workers = workers;
    const CampaignResult result = run_campaign(cells, options);
    valid = result.valid;
    benchmark::DoNotOptimize(result.cells.data());
  }
  state.counters["cells"] = static_cast<double>(cells.size());
  state.counters["valid"] = static_cast<double>(valid);
  state.counters["algorithms"] = static_cast<double>(
      default_algorithm_registry().names().size());
  state.counters["cells/sec"] = benchmark::Counter(
      static_cast<double>(cells.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Table1Campaign)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// The in-process cost of the sharding tier itself: plan the table1 grid
/// into K shards, push every manifest and result through its JSON round
/// trip (what the worker processes exchange on disk), run the shards, and
/// merge — versus BM_Table1Campaign's direct run_campaign. The delta is
/// the orchestration overhead BENCH_shard.json measures end-to-end with
/// real processes. Aborts on any merge/output-hash divergence.
void BM_Table1ShardPlanRunMerge(benchmark::State& state) {
  ScenarioParams params;
  params.n = 128;
  const auto cells = make_table1_grid(params, 1);
  const int shards = static_cast<int>(state.range(0));
  const CampaignResult single = run_campaign(cells, {});
  for (auto _ : state) {
    const ShardPlan plan =
        plan_shards(cells, shards, ShardPolicy::kCostBalanced);
    const ShardPlan plan_back =
        ShardPlan::from_json(json::Value::parse(plan.to_json().dump()));
    std::vector<ShardResult> results;
    results.reserve(plan_back.shards.size());
    for (const ShardManifest& manifest : plan_back.shards) {
      const ShardResult result = run_shard(
          ShardManifest::from_json(json::Value::parse(manifest.to_json().dump())),
          {});
      results.push_back(
          ShardResult::from_json(json::Value::parse(result.to_json().dump())));
    }
    const CampaignResult merged = merge_shard_results(plan_back, results);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (merged.cells[i].output_hash != single.cells[i].output_hash) {
        std::fprintf(stderr, "shard merge divergence in cell %zu\n", i);
        std::abort();
      }
    }
    benchmark::DoNotOptimize(merged.cells.data());
  }
  state.counters["cells"] = static_cast<double>(cells.size());
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["cells/sec"] = benchmark::Counter(
      static_cast<double>(cells.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Table1ShardPlanRunMerge)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
}  // namespace unilocal
