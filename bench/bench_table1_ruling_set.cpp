// E7 — Table 1 row 9: randomized (2, 2(c+1))-ruling set
// (Schneider-Wattenhofer, O(2^c log^(1/c) n), parameter n) and
// Corollary 1(vii): the Theorem 2 transformer turns the truncated
// (Monte-Carlo) algorithm into a uniform Las Vegas one. We measure the
// expected ledger over seeds against the Monte-Carlo budget at the correct
// n, for beta in {2, 4} (the paper's beta = 2(c+1)).
#include <numeric>

#include "bench/bench_support.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/mc_to_lv.h"
#include "src/graph/generators.h"
#include "src/problems/ruling_set.h"
#include "src/prune/ruling_set_prune.h"

namespace unilocal {
namespace {

void run() {
  bench::header("E7: uniform Las Vegas (2,beta)-ruling set via Theorem 2",
                "Table 1 row 9 (Schneider-Wattenhofer) + Corollary 1(vii)");
  TextTable table({"beta", "n", "MC budget f(n*)", "E[uniform rounds]",
                   "max", "valid(all seeds)"});
  for (int beta : {2, 4}) {
    const auto algorithm = make_mc_ruling_set(beta);
    const RulingSetPruning pruning(beta);
    for (NodeId n : {256, 1024}) {
      Rng rng(static_cast<std::uint64_t>(n) + beta);
      Instance instance =
          make_instance(gnp(n, 6.0 / n, rng), IdentityScheme::kRandomSparse,
                        n + beta);
      const double budget = bound_at_correct_params(*algorithm, instance);
      std::vector<std::int64_t> ledgers;
      bool all_valid = true;
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        UniformRunOptions options;
        options.seed = seed;
        const UniformRunResult result =
            run_las_vegas_transformer(instance, *algorithm, pruning, options);
        all_valid = all_valid && result.solved &&
                    is_two_beta_ruling_set(instance.graph, result.outputs,
                                           beta);
        ledgers.push_back(result.total_rounds);
      }
      const double mean =
          std::accumulate(ledgers.begin(), ledgers.end(), 0.0) /
          static_cast<double>(ledgers.size());
      table.add_row({TextTable::fmt(std::int64_t{beta}),
                     TextTable::fmt(std::int64_t{n}),
                     TextTable::fmt(budget, 0), TextTable::fmt(mean, 1),
                     TextTable::fmt(*std::max_element(ledgers.begin(),
                                                      ledgers.end())),
                     all_valid ? "yes" : "NO"});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: expected uniform rounds within a constant factor\n"
      "of the Monte-Carlo budget; correct on every seed (Las Vegas)\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
