// M1 — wall-clock micro-benchmarks of the LOCAL simulator substrate
// (google-benchmark): rounds/second for message-heavy and message-light
// protocols, instance restriction, and the pruning fast path.
#include <benchmark/benchmark.h>

#include "src/algo/luby.h"
#include "src/algo/greedy_mis.h"
#include "src/algo/mis_from_coloring.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/graph/subgraph.h"
#include "src/prune/ruling_set_prune.h"
#include "src/runtime/kernel.h"
#include "src/runtime/reference.h"
#include "src/runtime/runner.h"

namespace unilocal {
namespace {

void BM_LubyMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  Instance instance =
      make_instance(gnp(n, 8.0 / n, rng), IdentityScheme::kRandomSparse, 2);
  std::uint64_t seed = 1;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    RunOptions options;
    options.seed = seed++;
    const RunResult result = run_local(instance, LubyMis{}, options);
    rounds += result.rounds_used;
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["rounds/iter"] =
      benchmark::Counter(static_cast<double>(rounds),
                         benchmark::Counter::kAvgIterations);
  state.counters["nodes"] = static_cast<double>(n);
}
BENCHMARK(BM_LubyMis)->Arg(1024)->Arg(8192);

void BM_GreedyMisPath(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Instance instance = make_instance(path_graph(n), IdentityScheme::kSequential);
  for (auto _ : state) {
    const RunResult result = run_local(instance, GreedyMis{});
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["nodes"] = static_cast<double>(n);
}
BENCHMARK(BM_GreedyMisPath)->Arg(512)->Arg(2048);

void BM_InducedSubgraph(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  Graph g = gnp(n, 10.0 / n, rng);
  std::vector<bool> keep(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) keep[static_cast<std::size_t>(v)] = (v % 3) != 0;
  for (auto _ : state) {
    auto sub = induced_subgraph(g, keep);
    benchmark::DoNotOptimize(sub.graph.num_edges());
  }
}
BENCHMARK(BM_InducedSubgraph)->Arg(4096)->Arg(32768);

void BM_RulingSetPruneApply(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  Instance instance =
      make_instance(gnp(n, 8.0 / n, rng), IdentityScheme::kRandomSparse, 4);
  std::vector<std::int64_t> yhat(static_cast<std::size_t>(n));
  for (auto& y : yhat) y = rng.next_bool(0.3) ? 1 : 0;
  const RulingSetPruning pruning(1);
  for (auto _ : state) {
    auto result = pruning.apply(instance, yhat);
    benchmark::DoNotOptimize(result.pruned.size());
  }
}
BENCHMARK(BM_RulingSetPruneApply)->Arg(4096)->Arg(32768);

// --- engine before/after (BENCH_engine.json) --------------------------------
//
// The seed engine (run_local_reference: vector-per-message, per-run
// reverse-port recomputation) against the arena engine (run_local: CSR +
// flat double-buffered arena) on the acceptance workloads: Luby MIS on a
// 100k-node random graph and on a 100k-node bounded-arboricity graph.
// "steps/s" counters are Process::step invocations per wall second.

Instance engine_gnp_instance() {
  const NodeId n = 100000;
  Rng rng(7);
  return make_instance(gnp(n, 8.0 / n, rng), IdentityScheme::kRandomSparse, 3);
}

Instance engine_arboricity_instance() {
  Rng rng(8);
  return make_instance(random_layered_forest(100000, 2, rng),
                       IdentityScheme::kRandomSparse, 4);
}

void run_engine_bench(benchmark::State& state, const Instance& instance,
                      bool arena, int threads) {
  std::uint64_t seed = 1;
  std::int64_t steps = 0;
  EngineWorkspace workspace;
  for (auto _ : state) {
    RunOptions options;
    options.seed = seed++;
    options.num_threads = threads;
    const RunResult result =
        arena ? run_local(instance, LubyMis{}, options, &workspace)
              : run_local_reference(instance, LubyMis{}, options);
    steps += result.stats.total_steps;
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
  state.counters["nodes"] = static_cast<double>(instance.num_nodes());
}

void BM_EngineSeed_Gnp100k(benchmark::State& state) {
  run_engine_bench(state, engine_gnp_instance(), /*arena=*/false, 1);
}
BENCHMARK(BM_EngineSeed_Gnp100k)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_EngineArena_Gnp100k(benchmark::State& state) {
  run_engine_bench(state, engine_gnp_instance(), /*arena=*/true,
                   static_cast<int>(state.range(0)));
}
BENCHMARK(BM_EngineArena_Gnp100k)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_EngineSeed_Arboricity100k(benchmark::State& state) {
  run_engine_bench(state, engine_arboricity_instance(), /*arena=*/false, 1);
}
BENCHMARK(BM_EngineSeed_Arboricity100k)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_EngineArena_Arboricity100k(benchmark::State& state) {
  run_engine_bench(state, engine_arboricity_instance(), /*arena=*/true,
                   static_cast<int>(state.range(0)));
}
BENCHMARK(BM_EngineArena_Arboricity100k)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// --- kernel vs vtable (BENCH_engine.json pr6_kernel_vs_vtable) --------------
//
// The PR 6 step-kernel tier against the Process vtable path on the same
// arena engine, dense small-state acceptance workloads (Luby and greedy
// MIS at n = 100k), single thread: Arg(0) forces the vtable path
// (kernel_mode=off), Arg(1) the flat kernel (kernel_mode=on). Outputs are
// bit-identical; only the per-step dispatch and state layout differ.

void run_kernel_bench(benchmark::State& state, const Instance& instance,
                      const Algorithm& algorithm, KernelMode mode) {
  std::uint64_t seed = 1;
  std::int64_t steps = 0;
  EngineWorkspace workspace;
  for (auto _ : state) {
    RunOptions options;
    options.seed = seed++;
    options.num_threads = 1;
    options.kernel_mode = mode;
    const RunResult result =
        run_local(instance, algorithm, options, &workspace);
    steps += result.stats.total_steps;
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
  state.counters["nodes"] = static_cast<double>(instance.num_nodes());
}

KernelMode bench_kernel_mode(benchmark::State& state) {
  return state.range(0) == 0 ? KernelMode::kOff : KernelMode::kOn;
}

void BM_KernelVsVtable_LubyGnp100k(benchmark::State& state) {
  run_kernel_bench(state, engine_gnp_instance(), LubyMis{},
                   bench_kernel_mode(state));
}
BENCHMARK(BM_KernelVsVtable_LubyGnp100k)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_KernelVsVtable_LubyArboricity100k(benchmark::State& state) {
  run_kernel_bench(state, engine_arboricity_instance(), LubyMis{},
                   bench_kernel_mode(state));
}
BENCHMARK(BM_KernelVsVtable_LubyArboricity100k)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_KernelVsVtable_GreedyGnp100k(benchmark::State& state) {
  run_kernel_bench(state, engine_gnp_instance(), GreedyMis{},
                   bench_kernel_mode(state));
}
BENCHMARK(BM_KernelVsVtable_GreedyGnp100k)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// --- batched vs scalar kernels (BENCH_engine.json pr8_batched_vs_scalar) ----
//
// The PR 8 batched tier against the same kernels stepped one node at a
// time: Arg(0) runs a copy of the kernel with every KernelBatchFn
// stripped (the engine falls back to the scalar per-node loop), Arg(1)
// the batch functions as registered. Both run kernel_mode=on on one
// thread; outputs are bit-identical, only the bucket dispatch and the
// laned scans differ.

/// Serves the inner algorithm's kernel with all batch fns removed.
class ScalarKernelAlgorithm final : public Algorithm {
 public:
  explicit ScalarKernelAlgorithm(std::shared_ptr<const Algorithm> inner)
      : inner_(std::move(inner)) {
    auto stripped = std::make_shared<StepKernel>(*inner_->kernel());
    for (auto& phase : stripped->phases) phase.batch = nullptr;
    kernel_ = std::move(stripped);
  }
  std::unique_ptr<Process> spawn(const NodeInit& init) const override {
    return inner_->spawn(init);
  }
  std::shared_ptr<const StepKernel> kernel() const override {
    return kernel_;
  }
  std::string name() const override { return inner_->name() + "/scalar"; }

 private:
  std::shared_ptr<const Algorithm> inner_;
  std::shared_ptr<const StepKernel> kernel_;
};

void run_batched_bench(benchmark::State& state,
                       const Instance& instance,
                       std::shared_ptr<const Algorithm> algorithm) {
  const ScalarKernelAlgorithm scalar(algorithm);
  const Algorithm& chosen =
      state.range(0) == 0 ? static_cast<const Algorithm&>(scalar)
                          : *algorithm;
  run_kernel_bench(state, instance, chosen, KernelMode::kOn);
}

void BM_KernelBatched_LubyGnp100k(benchmark::State& state) {
  run_batched_bench(state, engine_gnp_instance(),
                    std::make_shared<LubyMis>());
}
BENCHMARK(BM_KernelBatched_LubyGnp100k)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_KernelBatched_LubyArboricity100k(benchmark::State& state) {
  run_batched_bench(state, engine_arboricity_instance(),
                    std::make_shared<LubyMis>());
}
BENCHMARK(BM_KernelBatched_LubyArboricity100k)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_KernelBatched_GreedyGnp100k(benchmark::State& state) {
  run_batched_bench(state, engine_gnp_instance(),
                    std::make_shared<GreedyMis>());
}
BENCHMARK(BM_KernelBatched_GreedyGnp100k)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_KernelBatched_ChainMisArboricity100k(benchmark::State& state) {
  // The composite chain (Linial -> color-reduce -> sweep) on the
  // bounded-arboricity family: the gnp instance's Delta^2 reduce tail
  // would dominate the whole bench suite.
  const Instance instance = engine_arboricity_instance();
  const std::int64_t delta =
      std::max<std::int64_t>(max_degree(instance.graph), 1);
  const std::int64_t m =
      std::max<std::int64_t>(instance.max_identity(), 2);
  run_batched_bench(
      state, instance,
      std::shared_ptr<const Algorithm>(make_coloring_mis_algorithm(delta, m)));
}
BENCHMARK(BM_KernelBatched_ChainMisArboricity100k)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// --- engine long-tail family (BENCH_engine.json straggler rows) -------------
//
// The paper's pruning/alternation pipelines leave a shrinking straggler
// frontier running long after the bulk of the graph has terminated. These
// workloads reproduce that shape so the engine's fixed per-round costs
// (send-span clears, finished-node scans, synchronizer eligibility
// scheduling) are exposed instead of being buried under live stepping work.

/// Broadcasts one word per round until round input[0], then finishes — the
/// canonical long tail: nearly every node retires after a couple of rounds
/// while a few input-marked stragglers run for thousands more.
class StragglerCountdown final : public Algorithm {
 public:
  class P final : public Process {
   public:
    void step(Context& ctx) override {
      const std::int64_t deadline = ctx.input().empty() ? 0 : ctx.input()[0];
      if (ctx.round() >= deadline) {
        ctx.finish(ctx.round());
        return;
      }
      ctx.broadcast({ctx.round()});
    }
  };
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<P>();
  }
  std::string name() const override { return "straggler-countdown"; }
};

/// High-diameter caterpillar (n = 100k) where every node finishes within 3
/// steps except 100 spine stragglers that run for `tail` rounds.
Instance longtail_caterpillar_instance(std::int64_t tail) {
  const NodeId spine = 50000;
  const NodeId legs = 50000;
  Rng rng(11);
  Instance instance = make_instance(caterpillar(spine, legs, rng),
                                    IdentityScheme::kRandomSparse, 5);
  for (NodeId v = 0; v < instance.num_nodes(); ++v)
    instance.inputs[static_cast<std::size_t>(v)] = {2};
  for (NodeId v = 0; v < spine; v += 500)
    instance.inputs[static_cast<std::size_t>(v)] = {tail};
  return instance;
}

void BM_EngineLongTail_CaterpillarStragglers(benchmark::State& state) {
  const Instance instance = longtail_caterpillar_instance(4000);
  const StragglerCountdown algorithm;
  std::int64_t rounds = 0;
  EngineWorkspace workspace;
  for (auto _ : state) {
    const RunResult result =
        run_local(instance, algorithm, RunOptions{}, &workspace);
    rounds += result.rounds_used;
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["rounds/iter"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
  state.counters["nodes"] = static_cast<double>(instance.num_nodes());
}
BENCHMARK(BM_EngineLongTail_CaterpillarStragglers)
    ->Unit(benchmark::kMillisecond);

/// The same straggler tail under the alpha synchronizer (all nodes wake at
/// 0): after a couple of global rounds only the 100 spine stragglers remain
/// eligible while thousands of global rounds elapse — the worst case for a
/// per-global-round full eligibility rescan.
void BM_EngineLongTail_CaterpillarSyncStragglers(benchmark::State& state) {
  const Instance instance = longtail_caterpillar_instance(4000);
  RunOptions options;
  options.wake_rounds.assign(
      static_cast<std::size_t>(instance.num_nodes()), 0);
  const StragglerCountdown algorithm;
  std::int64_t global_rounds = 0;
  EngineWorkspace workspace;
  for (auto _ : state) {
    const RunResult result =
        run_local(instance, algorithm, options, &workspace);
    global_rounds += result.global_rounds;
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["global_rounds/iter"] = benchmark::Counter(
      static_cast<double>(global_rounds), benchmark::Counter::kAvgIterations);
  state.counters["nodes"] = static_cast<double>(instance.num_nodes());
}
BENCHMARK(BM_EngineLongTail_CaterpillarSyncStragglers)
    ->Unit(benchmark::kMillisecond);

/// Luby on G(n,p) under the alpha synchronizer with 8 late wakers spread up
/// to global round 8000: the whole graph throttles to within its distance of
/// the sleepers, so most global rounds have an empty (or tiny) eligible set.
void BM_EngineLongTail_GnpLubyWakeTail(benchmark::State& state) {
  const Instance instance = engine_gnp_instance();
  RunOptions options;
  options.wake_rounds.assign(
      static_cast<std::size_t>(instance.num_nodes()), 0);
  for (int k = 0; k < 8; ++k)
    options.wake_rounds[static_cast<std::size_t>(k) * 12503] = 1000 * (k + 1);
  const LubyMis algorithm;
  std::uint64_t seed = 1;
  std::int64_t global_rounds = 0;
  EngineWorkspace workspace;
  for (auto _ : state) {
    options.seed = seed++;
    const RunResult result =
        run_local(instance, algorithm, options, &workspace);
    global_rounds += result.global_rounds;
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["global_rounds/iter"] = benchmark::Counter(
      static_cast<double>(global_rounds), benchmark::Counter::kAvgIterations);
  state.counters["nodes"] = static_cast<double>(instance.num_nodes());
}
BENCHMARK(BM_EngineLongTail_GnpLubyWakeTail)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace unilocal
