// M1 — wall-clock micro-benchmarks of the LOCAL simulator substrate
// (google-benchmark): rounds/second for message-heavy and message-light
// protocols, instance restriction, and the pruning fast path.
#include <benchmark/benchmark.h>

#include "src/algo/luby.h"
#include "src/algo/greedy_mis.h"
#include "src/graph/generators.h"
#include "src/graph/subgraph.h"
#include "src/prune/ruling_set_prune.h"
#include "src/runtime/reference.h"
#include "src/runtime/runner.h"

namespace unilocal {
namespace {

void BM_LubyMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  Instance instance =
      make_instance(gnp(n, 8.0 / n, rng), IdentityScheme::kRandomSparse, 2);
  std::uint64_t seed = 1;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    RunOptions options;
    options.seed = seed++;
    const RunResult result = run_local(instance, LubyMis{}, options);
    rounds += result.rounds_used;
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["rounds/iter"] =
      benchmark::Counter(static_cast<double>(rounds),
                         benchmark::Counter::kAvgIterations);
  state.counters["nodes"] = static_cast<double>(n);
}
BENCHMARK(BM_LubyMis)->Arg(1024)->Arg(8192);

void BM_GreedyMisPath(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Instance instance = make_instance(path_graph(n), IdentityScheme::kSequential);
  for (auto _ : state) {
    const RunResult result = run_local(instance, GreedyMis{});
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["nodes"] = static_cast<double>(n);
}
BENCHMARK(BM_GreedyMisPath)->Arg(512)->Arg(2048);

void BM_InducedSubgraph(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  Graph g = gnp(n, 10.0 / n, rng);
  std::vector<bool> keep(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) keep[static_cast<std::size_t>(v)] = (v % 3) != 0;
  for (auto _ : state) {
    auto sub = induced_subgraph(g, keep);
    benchmark::DoNotOptimize(sub.graph.num_edges());
  }
}
BENCHMARK(BM_InducedSubgraph)->Arg(4096)->Arg(32768);

void BM_RulingSetPruneApply(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  Instance instance =
      make_instance(gnp(n, 8.0 / n, rng), IdentityScheme::kRandomSparse, 4);
  std::vector<std::int64_t> yhat(static_cast<std::size_t>(n));
  for (auto& y : yhat) y = rng.next_bool(0.3) ? 1 : 0;
  const RulingSetPruning pruning(1);
  for (auto _ : state) {
    auto result = pruning.apply(instance, yhat);
    benchmark::DoNotOptimize(result.pruned.size());
  }
}
BENCHMARK(BM_RulingSetPruneApply)->Arg(4096)->Arg(32768);

// --- engine before/after (BENCH_engine.json) --------------------------------
//
// The seed engine (run_local_reference: vector-per-message, per-run
// reverse-port recomputation) against the arena engine (run_local: CSR +
// flat double-buffered arena) on the acceptance workloads: Luby MIS on a
// 100k-node random graph and on a 100k-node bounded-arboricity graph.
// "steps/s" counters are Process::step invocations per wall second.

Instance engine_gnp_instance() {
  const NodeId n = 100000;
  Rng rng(7);
  return make_instance(gnp(n, 8.0 / n, rng), IdentityScheme::kRandomSparse, 3);
}

Instance engine_arboricity_instance() {
  Rng rng(8);
  return make_instance(random_layered_forest(100000, 2, rng),
                       IdentityScheme::kRandomSparse, 4);
}

void run_engine_bench(benchmark::State& state, const Instance& instance,
                      bool arena, int threads) {
  std::uint64_t seed = 1;
  std::int64_t steps = 0;
  EngineWorkspace workspace;
  for (auto _ : state) {
    RunOptions options;
    options.seed = seed++;
    options.num_threads = threads;
    const RunResult result =
        arena ? run_local(instance, LubyMis{}, options, &workspace)
              : run_local_reference(instance, LubyMis{}, options);
    steps += result.stats.total_steps;
    benchmark::DoNotOptimize(result.outputs.data());
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
  state.counters["nodes"] = static_cast<double>(instance.num_nodes());
}

void BM_EngineSeed_Gnp100k(benchmark::State& state) {
  run_engine_bench(state, engine_gnp_instance(), /*arena=*/false, 1);
}
BENCHMARK(BM_EngineSeed_Gnp100k)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_EngineArena_Gnp100k(benchmark::State& state) {
  run_engine_bench(state, engine_gnp_instance(), /*arena=*/true,
                   static_cast<int>(state.range(0)));
}
BENCHMARK(BM_EngineArena_Gnp100k)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_EngineSeed_Arboricity100k(benchmark::State& state) {
  run_engine_bench(state, engine_arboricity_instance(), /*arena=*/false, 1);
}
BENCHMARK(BM_EngineSeed_Arboricity100k)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_EngineArena_Arboricity100k(benchmark::State& state) {
  run_engine_bench(state, engine_arboricity_instance(), /*arena=*/true,
                   static_cast<int>(state.range(0)));
}
BENCHMARK(BM_EngineArena_Arboricity100k)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace unilocal
