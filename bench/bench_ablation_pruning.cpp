// A4 — Ablation: pruning progress and pruning cost.
//
// Part 1 (Section 3, monotone progress): the framework never rolls work
// back — even sub-iterations whose guesses are far too small settle part of
// the graph permanently. Measured as the survivor curve of the Theorem 1
// transformer running the greedy-substitute (f(n~) = 2n~+4) on a path with
// adversarially sorted identities: each doubled budget settles roughly the
// next prefix of the path.
//
// Part 2 (Section 6.1, non-constant-time pruning): inflating the pruning
// algorithm's running time by h extra rounds costs h per sub-iteration —
// i.e. h times a logarithmic count — exactly the additive overhead the
// paper's concluding section predicts.
#include "bench/bench_support.h"
#include "src/algo/greedy_mis.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/prune/ruling_set_prune.h"
#include "src/prune/slowed_pruning.h"

namespace unilocal {
namespace {

void run() {
  bench::header("A4: ablation — pruning progress and pruning cost",
                "Sections 3 and 6.1 (monotone progress; general pruning)");
  const auto algorithm = make_global_mis();
  Instance instance =
      make_instance(path_graph(3000), IdentityScheme::kSequential);

  std::printf("\n-- part 1: survivor curve (greedy MIS, sorted path) --\n");
  const RulingSetPruning pruning(1);
  const UniformRunResult result =
      run_uniform_transformer(instance, *algorithm, pruning);
  TextTable table({"iter", "guess n~", "budget", "rounds", "survivors before",
                   "pruned", "% settled"});
  std::int64_t settled = 0;
  for (const auto& trace : result.trace) {
    settled += trace.nodes_pruned;
    table.add_row(
        {TextTable::fmt(std::int64_t{trace.iteration}),
         TextTable::fmt(trace.guesses.empty() ? 0 : trace.guesses[0]),
         TextTable::fmt(trace.budget), TextTable::fmt(trace.rounds_used),
         TextTable::fmt(std::int64_t{trace.nodes_before}),
         TextTable::fmt(std::int64_t{trace.nodes_pruned}),
         TextTable::fmt(100.0 * static_cast<double>(settled) /
                            static_cast<double>(instance.num_nodes()),
                        1)});
  }
  table.print();
  std::printf("total ledger %lld rounds, solved=%s\n",
              static_cast<long long>(result.total_rounds),
              result.solved ? "yes" : "no");

  std::printf(
      "\n-- part 2: non-constant-time pruning (Section 6.1) --\n");
  TextTable slow_table({"extra prune rounds h", "ledger", "sub-iterations",
                        "measured overhead", "h * #subs prediction"});
  auto base = std::make_shared<RulingSetPruning>(1);
  const UniformRunResult fast =
      run_uniform_transformer(instance, *algorithm, *base);
  for (std::int64_t h : {0, 8, 64, 512}) {
    const SlowedPruning slowed(base, h);
    const UniformRunResult slow =
        run_uniform_transformer(instance, *algorithm, slowed);
    const std::int64_t subs =
        static_cast<std::int64_t>(slow.trace.size());
    slow_table.add_row(
        {TextTable::fmt(h), TextTable::fmt(slow.total_rounds),
         TextTable::fmt(subs),
         TextTable::fmt(slow.total_rounds - fast.total_rounds),
         TextTable::fmt(h * subs)});
  }
  slow_table.print();
  std::printf(
      "\nexpected shape: part 1 — survivors shrink monotonically, each\n"
      "doubled guess settles the next prefix; part 2 — overhead equals\n"
      "h per sub-iteration (additive, as Section 6.1 predicts)\n");
}

}  // namespace
}  // namespace unilocal

int main() {
  unilocal::run();
  return 0;
}
