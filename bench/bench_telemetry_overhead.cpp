// Telemetry overhead (src/runtime/telemetry.h): the same campaign workload
// at the three attachment levels —
//   Arg(0) off: no recorder, no registry; every reporting site reduces to
//          one null/pointer test (the cost every untraced run pays);
//   Arg(1) attached-but-sampled: recorder bound with --trace-rounds=0 and
//          a registry installed, so run/cell spans and metrics record but
//          per-round events are suppressed by head sampling;
//   Arg(2) full: default head-sampling cap, every round of every engine
//          run records a span.
// The off row must stay within noise of a pre-telemetry build (the
// disabled path adds one branch per round); the gap between the rows IS
// the price of per-round tracing, paid only when a sink is attached.
//
// BENCH_engine.json ("pr10_telemetry_overhead") records the numbers from
//   ./build/bench_telemetry_overhead --benchmark_format=json
#include <benchmark/benchmark.h>

#include <cstdint>

#include "src/runtime/campaign.h"
#include "src/runtime/telemetry.h"

namespace unilocal {
namespace {

std::vector<CampaignCell> benchmark_grid() {
  ScenarioParams params;
  params.n = 2000;
  // Round-heavy cells: per-round trace events are the cost being measured,
  // so pick algorithms that run many rounds per cell.
  return make_grid({"gnp", "layered-forest"}, params,
                   {"luby-mis", "mis-uniform"}, 2);
}

void BM_TelemetryOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto cells = benchmark_grid();
  std::int64_t trace_events = 0;
  int solved = 0;
  for (auto _ : state) {
    telemetry::TraceRecorder recorder;
    telemetry::MetricsRegistry registry;
    const telemetry::ScopedMetrics scoped(mode > 0 ? &registry : nullptr);
    CampaignOptions options;
    options.workers = 1;
    if (mode > 0) {
      options.trace = &recorder;
      options.trace_rounds =
          mode == 2 ? telemetry::kDefaultTraceRounds : 0;
    }
    const CampaignResult result = run_campaign(cells, options);
    solved = result.solved;
    trace_events = static_cast<std::int64_t>(recorder.size());
    benchmark::DoNotOptimize(result.cells.data());
  }
  state.counters["cells"] = static_cast<double>(cells.size());
  state.counters["solved"] = static_cast<double>(solved);
  state.counters["trace_events"] = static_cast<double>(trace_events);
  state.SetLabel(mode == 0   ? "off"
                 : mode == 1 ? "attached_sampled"
                             : "full");
}
BENCHMARK(BM_TelemetryOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace unilocal

BENCHMARK_MAIN();
